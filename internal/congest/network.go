// Package congest simulates the synchronous CONGEST model: a network of
// nodes, one per graph vertex, exchanging O(log n)-bit messages over graph
// edges in lockstep rounds.
//
// A simulation is deterministic: nodes step in a fixed logical order, and
// the parallel engine (persistent worker goroutines over fixed vertex
// shards with a barrier per phase) produces results bit-identical to the
// sequential engine.
//
// Bandwidth is enforced: per round, at most one message may cross each edge
// in each direction, and each message carries at most MaxWords words, a word
// being ceil(log2 n) bits. Violations abort the run with an error rather
// than silently under-counting rounds.
//
// The round loop is allocation-free in the steady state. All engine state —
// the epoch-stamped port arrays, the receiver-driven delivery table, the
// double-buffered inboxes, the per-worker stat shards — is allocated once
// per Run; see DESIGN.md §8 for the internals.
package congest

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"planardfs/internal/graph"
	"planardfs/internal/trace"
)

// Message is a CONGEST message: a program-defined kind tag plus up to
// MaxWords-1 word-sized arguments (the kind counts as one word).
type Message struct {
	Kind int
	Args []int
}

// Words returns the bandwidth cost of the message in words.
func (m Message) Words() int { return 1 + len(m.Args) }

// Incoming is a received message together with the port it arrived on.
type Incoming struct {
	Port int
	Msg  Message
}

// Outgoing is a message to send on a port of the sending node.
type Outgoing struct {
	Port int
	Msg  Message
}

// Node is a per-vertex CONGEST program. Round is called once per round with
// the messages delivered this round (sent by neighbours in the previous
// round); it returns the messages to send and whether the node has halted.
// A halted node's Round is still called (it may be woken by late messages);
// the network stops when every node reports done in a round with no
// messages in flight.
//
// The recv slice is owned by the engine and recycled across rounds; a node
// that retains messages beyond the current Round call must copy them.
type Node interface {
	Round(round int, recv []Incoming) (send []Outgoing, done bool)
}

// EventDriven is an optional marker for Node programs that are purely
// message-driven: after round 0, a step in which the node receives no
// messages and emits none must leave its state (and its done report)
// unchanged until the next message arrives. When every node of a run
// implements the marker and no Injector is attached, the engine skips
// quiescent nodes entirely, so the simulation costs O(messages + n)
// instead of O(n × rounds) — the difference between hours and seconds for
// deep convergecasts on million-vertex graphs. Round-scheduled programs
// that act spontaneously at fixed round offsets (e.g. BoruvkaNode) must
// not implement it.
type EventDriven interface {
	Node
	// CongestEventDriven is a marker only; it is never called.
	CongestEventDriven()
}

// NodeInfo is the local knowledge every CONGEST node starts with: its own
// identifier, and the identifier at the far end of each incident port.
type NodeInfo struct {
	ID        int
	Neighbors []int // Neighbors[port] is the neighbour's vertex ID.
	N         int   // number of nodes in the network (known bound)
}

// Stats aggregates instrumentation for a run.
type Stats struct {
	Rounds        int
	Messages      int64
	Words         int64
	MaxEdgeLoad   int64 // max messages carried by a single edge over the run
	MaxRoundWords int64 // max words sent network-wide in one round
	// MaxEdgeCongestion is the most messages a single edge carried in a
	// single round (at most 2: one per direction under the bandwidth rule).
	MaxEdgeCongestion int64
	// RoundMessages[i] is the number of messages delivered in round i; it
	// feeds the per-round message histogram of the tracing subsystem.
	RoundMessages []int64
}

// Network simulates a CONGEST network over a graph.
type Network struct {
	G *graph.Graph
	// MaxWords bounds the size of a single message in words
	// (1 word = ceil(log2 n) bits). Default 4.
	MaxWords int
	// Parallel selects the sharded round engine (persistent workers, one
	// vertex shard each, a barrier per phase).
	Parallel bool
	// Workers overrides the worker count of the sharded engine; 0 means
	// runtime.NumCPU(). Results are identical for every worker count, so
	// this is a performance/testing knob, not a semantic one.
	Workers int
	// Tracer receives per-round spans and message/congestion metrics; nil
	// (or trace.Nop) disables instrumentation at zero cost. The tracer is
	// only driven from the sequential merge section of the round loop,
	// so traces are identical under both engines.
	Tracer trace.Tracer
	// Injector intercepts the run at the fault-injection points (crash
	// checks in the step phase, per-message rulings in the delivery
	// phase); nil disables injection with no hook overhead. See inject.go
	// for the determinism/concurrency contract.
	Injector Injector
	// StepAll forces the classic schedule that steps every node every
	// round, even when all programs implement EventDriven. Results are
	// bit-identical either way (the equivalence tests enforce this); the
	// flag exists for those tests and as an escape hatch.
	StepAll bool

	stats Stats
}

// New returns a network over g with default settings (4-word messages,
// parallel engine).
func New(g *graph.Graph) *Network {
	return &Network{G: g, MaxWords: 4, Parallel: true}
}

// Stats returns instrumentation from the last Run. The RoundMessages slice
// is a defensive copy: mutating the returned slice cannot corrupt — or be
// corrupted by — the engine's internal histogram.
func (nw *Network) Stats() Stats {
	st := nw.stats
	if st.RoundMessages != nil {
		st.RoundMessages = append([]int64(nil), st.RoundMessages...)
	}
	return st
}

// Info returns the initial local knowledge of vertex v.
func (nw *Network) Info(v int) NodeInfo {
	return NodeInfo{ID: v, Neighbors: nw.G.Neighbors(v), N: nw.G.N()}
}

// ErrRoundLimit is returned when a run exceeds its round budget.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// ErrInvalidRoundLimit is returned when Run is called with a non-positive
// round budget, before any node steps.
var ErrInvalidRoundLimit = errors.New("congest: round limit must be positive")

// Run executes the nodes until global termination (all nodes done and no
// messages in flight) or until maxRounds rounds have elapsed. It returns
// the number of rounds executed. maxRounds must be positive.
func (nw *Network) Run(nodes []Node, maxRounds int) (int, error) {
	n := nw.G.N()
	if len(nodes) != n {
		return 0, fmt.Errorf("congest: %d nodes for %d vertices", len(nodes), n)
	}
	if maxRounds <= 0 {
		return 0, fmt.Errorf("%w (got %d)", ErrInvalidRoundLimit, maxRounds)
	}
	nw.stats = Stats{}
	e := newEngine(nw, nodes)
	defer e.stop()
	return e.run(maxRounds)
}

// Engine phases; each round is one step barrier followed by one delivery
// barrier.
const (
	phaseStep = iota
	phaseDeliver
)

// delivEntry describes one potential delivery into a receiver: the sender,
// the sender-side port (whose epoch stamp says whether a message is pending
// this round), and the receiving port. Entries are laid out per receiver in
// ascending sender order, so receiver-driven delivery reproduces the
// sender-major inbox ordering of the sequential scan byte for byte.
type delivEntry struct {
	src      int32
	srcPort  int32
	recvPort int32
}

// shardStats accumulates one worker's delivery statistics for one round;
// shards are merged in worker-index order after the barrier, so totals are
// deterministic. Padded to a cache line to avoid false sharing.
type shardStats struct {
	msgs    int64
	words   int64
	maxCong int64
	_       [5]int64
}

// engine is the per-Run state of the round loop. Every slice is allocated
// once here; the steady-state loop allocates nothing (the only amortized
// growth is the RoundMessages histogram and the inbox capacity ramp-up,
// both of which stabilise).
type engine struct {
	nw       *Network
	nodes    []Node
	n        int
	maxWords int
	inj      Injector // nil when no faults are injected

	// Flat per-(vertex,port) state: port p of vertex v lives at flat index
	// off[v]+p; off has length n+1, so off[v+1]-off[v] is the degree of v.
	off       []int
	portEpoch []int   // last round v sent on the port (-1 = never)
	portMsg   []int32 // index into outboxes[v] of that round's message
	portLoad  []int64 // messages delivered into the port over the run

	// deliv[off[w]+k] is the k-th potential delivery into w.
	deliv []delivEntry

	// Double-buffered inboxes: nodes read inboxCur during the step phase
	// while delivery fills inboxNxt; the buffers swap at the end of each
	// round so slice capacity is recycled instead of reallocated.
	inboxCur [][]Incoming
	inboxNxt [][]Incoming
	outboxes [][]Outgoing
	dones    []bool
	errs     []error

	round int
	phase int

	chunk  int
	shards []shardStats
	start  []chan struct{} // nil when sequential
	wg     sync.WaitGroup

	// Event-driven scheduler state (see EventDriven); unused when the
	// classic every-node-every-round schedule is in effect.
	event     bool
	peer      []int32 // peer[off[v]+p]: vertex at the far end of port p
	rport     []int32 // rport[off[v]+p]: that vertex's receiving port
	evStamp   []int   // round the vertex was last queued for (-1 = never)
	evActive  []int32
	evNext    []int32
	evSenders []int32
}

func newEngine(nw *Network, nodes []Node) *engine {
	g := nw.G
	n := g.N()
	maxWords := nw.MaxWords
	if maxWords <= 0 {
		maxWords = 4
	}
	e := &engine{nw: nw, nodes: nodes, n: n, maxWords: maxWords, inj: nw.Injector}

	e.off = make([]int, n+1)
	for v := 0; v < n; v++ {
		e.off[v+1] = e.off[v] + g.Degree(v)
	}
	ports := e.off[n]
	e.portEpoch = make([]int, ports)
	for i := range e.portEpoch {
		e.portEpoch[i] = -1
	}
	e.portMsg = make([]int32, ports)
	e.portLoad = make([]int64, ports)

	// The port index of every edge at each endpoint.
	portAtU := make([]int, g.M())
	portAtV := make([]int, g.M())
	for v := 0; v < n; v++ {
		for p, id := range g.IncidentEdges(v) {
			if u, _ := g.EndpointsOf(int(id)); u == int32(v) {
				portAtU[id] = p
			} else {
				portAtV[id] = p
			}
		}
	}
	// Receiver-driven delivery table. Scanning senders in ascending order
	// lays out each receiver's entries in ascending sender order.
	e.deliv = make([]delivEntry, ports)
	cursor := make([]int, n)
	copy(cursor, e.off[:n])
	for u := 0; u < n; u++ {
		for up, id := range g.IncidentEdges(u) {
			ed := g.EdgeByID(int(id))
			w := ed.Other(u)
			rp := portAtU[id]
			if ed.U != w {
				rp = portAtV[id]
			}
			e.deliv[cursor[w]] = delivEntry{src: int32(u), srcPort: int32(up), recvPort: int32(rp)}
			cursor[w]++
		}
	}

	e.inboxCur = make([][]Incoming, n)
	e.inboxNxt = make([][]Incoming, n)
	e.outboxes = make([][]Outgoing, n)
	e.dones = make([]bool, n)
	e.errs = make([]error, n)

	// The event-driven schedule applies only when every program has opted
	// in via the EventDriven marker and no injector is attached (crashes
	// and stall releases are round-scheduled externally, so every node
	// must be driven every round under injection).
	if nw.Injector == nil && !nw.StepAll {
		e.event = true
		for _, nd := range nodes {
			if _, ok := nd.(EventDriven); !ok {
				e.event = false
				break
			}
		}
	}
	if e.event {
		// Sender-side routing: invert the delivery table so a sender can
		// push its pending messages without scanning idle receivers.
		e.peer = make([]int32, ports)
		e.rport = make([]int32, ports)
		for w := 0; w < n; w++ {
			for k := e.off[w]; k < e.off[w+1]; k++ {
				d := e.deliv[k]
				sf := e.off[d.src] + int(d.srcPort)
				e.peer[sf] = int32(w)
				e.rport[sf] = d.recvPort
			}
		}
		e.evStamp = make([]int, n)
		for i := range e.evStamp {
			e.evStamp[i] = -1
		}
		e.evActive = make([]int32, 0, n)
		e.evNext = make([]int32, 0, n)
		e.evSenders = make([]int32, 0, n)
		e.shards = make([]shardStats, 1)
		return e
	}

	workers := nw.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if !nw.Parallel || workers > n {
		workers = 1
	}
	e.chunk = 1
	if workers > 1 {
		e.chunk = (n + workers - 1) / workers
		workers = (n + e.chunk - 1) / e.chunk
	}
	e.shards = make([]shardStats, workers)
	if workers > 1 {
		e.start = make([]chan struct{}, workers)
		for w := 0; w < workers; w++ {
			e.start[w] = make(chan struct{})
			go e.workerLoop(w)
		}
	}
	return e
}

// stop shuts down the persistent workers (a no-op for the sequential
// engine).
func (e *engine) stop() {
	for _, c := range e.start {
		close(c)
	}
}

// workerLoop runs one persistent worker over a fixed vertex shard. The
// coordinator writes e.phase and e.round before signalling, so the channel
// receive orders those writes before the phase body.
func (e *engine) workerLoop(w int) {
	lo := w * e.chunk
	hi := lo + e.chunk
	if hi > e.n {
		hi = e.n
	}
	for range e.start[w] {
		if e.phase == phaseStep {
			for v := lo; v < hi; v++ {
				e.step(v)
			}
		} else {
			e.deliver(&e.shards[w], lo, hi)
		}
		e.wg.Done()
	}
}

func (e *engine) runPhase(ph int) {
	if e.start == nil {
		if ph == phaseStep {
			for v := 0; v < e.n; v++ {
				e.step(v)
			}
		} else {
			e.deliver(&e.shards[0], 0, e.n)
		}
		return
	}
	e.phase = ph
	e.wg.Add(len(e.start))
	for _, c := range e.start {
		c <- struct{}{}
	}
	e.wg.Wait()
}

// step advances one node and validates its sends. A valid send stamps the
// sender-side port with the current round and records the outbox index, so
// delivery can find pending messages without touching edge tables. This is
// half of the steady-state round loop: everything it writes lives in
// arrays allocated by newEngine, and the only constructions are the
// protocol-error values on the abort path.
//
//planarvet:noalloc TestRoundLoopZeroAlloc
func (e *engine) step(v int) {
	if e.inj != nil && e.inj.Crashed(e.round, v) {
		// Crash-stop: the program is not called, nothing is sent (stale
		// epoch stamps deliver nothing), and the vertex counts as done.
		e.outboxes[v] = nil
		e.dones[v] = true
		return
	}
	send, done := e.nodes[v].Round(e.round, e.inboxCur[v])
	base := e.off[v]
	deg := e.off[v+1] - base
	for i, out := range send {
		if out.Port < 0 || out.Port >= deg {
			e.errs[v] = &ProtocolError{Kind: ErrInvalidPort, Round: e.round, Vertex: v, Port: out.Port} //planarvet:allocok abort path: a protocol violation ends the run, the steady state never reaches it
			return
		}
		fp := base + out.Port
		if e.portEpoch[fp] == e.round {
			e.errs[v] = &ProtocolError{Kind: ErrDuplicateSend, Round: e.round, Vertex: v, Port: out.Port} //planarvet:allocok abort path: a protocol violation ends the run, the steady state never reaches it
			return
		}
		if out.Msg.Words() > e.maxWords {
			//planarvet:allocok abort path: a protocol violation ends the run, the steady state never reaches it
			e.errs[v] = &ProtocolError{Kind: ErrMessageTooLarge, Round: e.round, Vertex: v, Port: out.Port,
				Words: out.Msg.Words(), Limit: e.maxWords}
			return
		}
		e.portEpoch[fp] = e.round
		e.portMsg[fp] = int32(i)
	}
	e.outboxes[v] = send
	e.dones[v] = done
}

// deliver routes pending messages into the receivers [lo,hi). It only
// reads state written before the phase barrier (epoch stamps, outboxes)
// and only writes receiver-owned state (inboxNxt, portLoad) plus its own
// shard, so shards never contend.
//
// Per-round edge congestion needs no per-edge bookkeeping: an edge carries
// two messages in a round exactly when the receiver of one direction also
// sent on the same port, which is one epoch-stamp comparison.
//
//planarvet:noalloc TestRoundLoopZeroAlloc
func (e *engine) deliver(ws *shardStats, lo, hi int) {
	ws.msgs, ws.words, ws.maxCong = 0, 0, 0
	round := e.round
	for w := lo; w < hi; w++ {
		base := e.off[w]
		deg := e.off[w+1] - base
		inb := e.inboxNxt[w][:0]
		for k := 0; k < deg; k++ {
			d := e.deliv[base+k]
			sf := e.off[d.src] + int(d.srcPort)
			if e.portEpoch[sf] != round {
				continue
			}
			msg := e.outboxes[d.src][e.portMsg[sf]].Msg
			rp := int(d.recvPort)
			if e.inj != nil {
				m, fate := e.inj.Deliver(round, int(d.src), int(d.srcPort), w, rp, msg)
				if fate != FateDeliver {
					continue // dropped or stalled: not delivered this round
				}
				msg = m
			}
			inb = append(inb, Incoming{Port: rp, Msg: msg}) //planarvet:allocok amortized: inboxNxt backing is recycled by the round-end buffer swap, capacity ramps up once then stabilises
			ws.msgs++
			ws.words += int64(msg.Words())
			e.portLoad[base+rp]++
			if e.portEpoch[base+rp] == round {
				ws.maxCong = 2
			} else if ws.maxCong < 1 {
				ws.maxCong = 1
			}
		}
		if e.inj != nil {
			// Stalled messages whose delay expires this round land after
			// the regular deliveries, still receiver-owned and in a fixed
			// order, so injected runs stay engine-identical.
			prev := len(inb)
			inb = e.inj.Released(round, w, inb)
			for _, in := range inb[prev:] {
				ws.msgs++
				ws.words += int64(in.Msg.Words())
				e.portLoad[base+in.Port]++
			}
		}
		e.inboxNxt[w] = inb
	}
}

func (e *engine) run(maxRounds int) (int, error) {
	nw := e.nw
	tr := trace.OrNop(nw.Tracer)
	traced := tr.Enabled()
	if e.event {
		return e.runEvent(maxRounds, tr, traced)
	}

	for e.round = 0; ; e.round++ {
		if e.round >= maxRounds {
			return e.round, &RoundLimitError{Limit: maxRounds}
		}
		e.runPhase(phaseStep)
		for v := 0; v < e.n; v++ {
			if e.errs[v] != nil {
				return e.round, e.errs[v]
			}
		}
		e.runPhase(phaseDeliver)

		// Merge worker shards in index order: the totals are sums and
		// maxima of per-worker accumulators over disjoint receiver ranges,
		// so they equal the sequential engine's byte for byte.
		var roundMsgs, roundWords, roundCong int64
		for i := range e.shards {
			s := &e.shards[i]
			roundMsgs += s.msgs
			roundWords += s.words
			if s.maxCong > roundCong {
				roundCong = s.maxCong
			}
		}
		e.accountRound(roundMsgs, roundWords, roundCong, tr, traced)

		e.inboxCur, e.inboxNxt = e.inboxNxt, e.inboxCur

		if roundMsgs == 0 && (e.inj == nil || !e.inj.Pending()) {
			all := true
			for v := 0; v < e.n; v++ {
				if !e.dones[v] {
					all = false
					break
				}
			}
			if all {
				break
			}
		}
	}

	return e.finishRun(tr, traced)
}

// accountRound folds one round's delivery totals into the run statistics
// and emits the per-round trace span; it is shared by both schedules so
// traces and stats are byte-identical across them.
func (e *engine) accountRound(roundMsgs, roundWords, roundCong int64, tr trace.Tracer, traced bool) {
	nw := e.nw
	nw.stats.Messages += roundMsgs
	nw.stats.Words += roundWords
	if roundCong > nw.stats.MaxEdgeCongestion {
		nw.stats.MaxEdgeCongestion = roundCong
	}
	if roundWords > nw.stats.MaxRoundWords {
		nw.stats.MaxRoundWords = roundWords
	}
	nw.stats.RoundMessages = append(nw.stats.RoundMessages, roundMsgs)
	nw.stats.Rounds = e.round + 1
	if traced {
		sp := tr.StartSpan(trace.LayerNetwork, "round")
		sp.SetAttr("msgs", roundMsgs)
		sp.SetAttr("words", roundWords)
		tr.Advance(1)
		sp.End()
		tr.Count("congest.rounds", 1)
		tr.Count("congest.messages", roundMsgs)
		tr.Count("congest.words", roundWords)
		tr.Observe("congest.msgs_per_round", roundMsgs)
		tr.Sample("congest.msgs_per_round", roundMsgs)
	}
}

// finishRun folds the per-port delivery counts into per-edge loads (each
// edge is the sum of its two directions) and emits the end-of-run gauges.
func (e *engine) finishRun(tr trace.Tracer, traced bool) (int, error) {
	nw := e.nw
	g := nw.G
	edgeLoad := make([]int64, g.M())
	for v := 0; v < e.n; v++ {
		for p, id := range g.IncidentEdges(v) {
			edgeLoad[id] += e.portLoad[e.off[v]+p]
		}
	}
	for _, l := range edgeLoad {
		if l > nw.stats.MaxEdgeLoad {
			nw.stats.MaxEdgeLoad = l
		}
	}
	if traced {
		for _, l := range edgeLoad {
			tr.Observe("congest.edge_load", l)
		}
		tr.SetGauge("congest.max_edge_congestion", nw.stats.MaxEdgeCongestion)
		tr.SetGauge("congest.max_edge_load", nw.stats.MaxEdgeLoad)
	}
	return nw.stats.Rounds, nil
}

// runEvent is the event-driven schedule: only nodes that received a
// message this round (or sent one last round, so streamed follow-ups like
// end markers still fire) are stepped; everything else is provably
// quiescent under the EventDriven contract. Delivery is sender-driven —
// iterating the round's senders in ascending order lays each receiver's
// inbox out in ascending (sender, sender-port) order, byte-identical to
// the receiver-driven scan of the classic schedule.
func (e *engine) runEvent(maxRounds int, tr trace.Tracer, traced bool) (int, error) {
	active := e.evActive[:0]
	for v := 0; v < e.n; v++ {
		active = append(active, int32(v))
	}
	next := e.evNext[:0]
	notDone := e.n

	for e.round = 0; ; e.round++ {
		if e.round >= maxRounds {
			return e.round, &RoundLimitError{Limit: maxRounds}
		}

		// Step phase over the active set (ascending, so the first protocol
		// error by vertex order wins, as in the classic schedule).
		senders := e.evSenders[:0]
		for _, v32 := range active {
			v := int(v32)
			wasDone := e.dones[v]
			e.step(v)
			if e.errs[v] != nil {
				return e.round, e.errs[v]
			}
			if e.dones[v] != wasDone {
				if e.dones[v] {
					notDone--
				} else {
					notDone++
				}
			}
			e.inboxCur[v] = e.inboxCur[v][:0]
			if len(e.outboxes[v]) > 0 {
				senders = append(senders, v32)
			}
		}

		// Delivery phase: push each sender's stamped ports to the peers.
		var roundMsgs, roundWords, roundCong int64
		next = next[:0]
		for _, u32 := range senders {
			u := int(u32)
			if e.evStamp[u] != e.round {
				e.evStamp[u] = e.round
				next = append(next, u32)
			}
			base := e.off[u]
			deg := e.off[u+1] - base
			for p := 0; p < deg; p++ {
				fp := base + p
				if e.portEpoch[fp] != e.round {
					continue
				}
				w := int(e.peer[fp])
				rp := int(e.rport[fp])
				msg := e.outboxes[u][e.portMsg[fp]].Msg
				e.inboxCur[w] = append(e.inboxCur[w], Incoming{Port: rp, Msg: msg})
				if e.evStamp[w] != e.round {
					e.evStamp[w] = e.round
					next = append(next, int32(w))
				}
				roundMsgs++
				roundWords += int64(msg.Words())
				wp := e.off[w] + rp
				e.portLoad[wp]++
				if e.portEpoch[wp] == e.round {
					roundCong = 2
				} else if roundCong < 1 {
					roundCong = 1
				}
			}
		}
		slices.Sort(next)

		e.accountRound(roundMsgs, roundWords, roundCong, tr, traced)

		if roundMsgs == 0 && notDone == 0 {
			break
		}
		active, next = next, active
	}

	e.evActive, e.evNext = active, next
	return e.finishRun(tr, traced)
}
