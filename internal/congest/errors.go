package congest

import (
	"errors"
	"fmt"
)

// Run errors are typed: a failed run reports the offending round, vertex
// and port rather than a bare string, and every error matches its sentinel
// through errors.Is, so supervisors (internal/chaos) and tests can branch
// on the failure class without parsing messages.

// Protocol-violation sentinels. A *ProtocolError matches ErrProtocol and
// exactly one of the specific sentinels below.
var (
	// ErrProtocol is the class sentinel every protocol violation matches.
	ErrProtocol = errors.New("congest: protocol violation")
	// ErrInvalidPort marks a send on a port outside the node's degree.
	ErrInvalidPort = errors.New("congest: send on invalid port")
	// ErrDuplicateSend marks two messages on one port in one round.
	ErrDuplicateSend = errors.New("congest: duplicate send on port")
	// ErrMessageTooLarge marks a message exceeding the word limit.
	ErrMessageTooLarge = errors.New("congest: message exceeds word limit")
)

// ProtocolError reports a node violating the CONGEST sending rules: which
// vertex, on which port, in which round, and which rule (Kind).
type ProtocolError struct {
	Kind   error // one of ErrInvalidPort, ErrDuplicateSend, ErrMessageTooLarge
	Round  int
	Vertex int
	Port   int
	Words  int // message size in words (ErrMessageTooLarge only)
	Limit  int // word limit in force (ErrMessageTooLarge only)
}

// Error implements error.
func (e *ProtocolError) Error() string {
	switch {
	case errors.Is(e.Kind, ErrInvalidPort):
		return fmt.Sprintf("congest: round %d: node %d sent on invalid port %d", e.Round, e.Vertex, e.Port)
	case errors.Is(e.Kind, ErrDuplicateSend):
		return fmt.Sprintf("congest: round %d: node %d sent two messages on port %d in one round", e.Round, e.Vertex, e.Port)
	case errors.Is(e.Kind, ErrMessageTooLarge):
		return fmt.Sprintf("congest: round %d: node %d sent a message of %d words on port %d, exceeding the %d-word limit",
			e.Round, e.Vertex, e.Words, e.Port, e.Limit)
	}
	return fmt.Sprintf("congest: round %d: node %d violated the protocol on port %d", e.Round, e.Vertex, e.Port)
}

// Unwrap makes the error match both ErrProtocol and its specific Kind
// under errors.Is.
func (e *ProtocolError) Unwrap() []error { return []error{ErrProtocol, e.Kind} }

// RoundLimitError reports a run exhausting its round budget; it matches
// ErrRoundLimit under errors.Is.
type RoundLimitError struct {
	Limit int
}

// Error implements error.
func (e *RoundLimitError) Error() string {
	return fmt.Sprintf("congest: round limit exceeded (limit %d)", e.Limit)
}

// Unwrap makes the error match ErrRoundLimit under errors.Is.
func (e *RoundLimitError) Unwrap() error { return ErrRoundLimit }
