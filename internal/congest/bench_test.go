package congest

// Round-engine benchmarks over the standard generator families. The
// quiescent benchmark measures one steady-state round per op (the whole
// Run spans b.N rounds), so `go test -bench BenchmarkRun -benchmem` must
// report 0 allocs/op there: the round loop's only amortized growth is the
// RoundMessages histogram. The program benchmarks measure full runs of
// BFS flooding, part-wise aggregation, and the Awerbuch message-level DFS;
// cmd/benchjson emits the same measurements as BENCH_congest.json.

import (
	"errors"
	"testing"

	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/spanning"
)

var benchEngines = []struct {
	name     string
	parallel bool
}{
	{"seq", false},
	{"par", true},
}

func benchGraph(b *testing.B, family string, n int) *graph.Graph {
	b.Helper()
	in, err := gen.ByName(family, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in.G
}

// BenchmarkRunQuiescentRound: op = one round of a network where every node
// is silent and never done, so the run spans exactly b.N rounds and ends at
// the round limit. Steady state must be allocation-free.
func BenchmarkRunQuiescentRound(b *testing.B) {
	for _, eng := range benchEngines {
		b.Run(eng.name, func(b *testing.B) {
			g := benchGraph(b, "grid", 1024)
			nodes := make([]Node, g.N())
			for i := range nodes {
				nodes[i] = &silentNode{}
			}
			nw := New(g)
			nw.Parallel = eng.parallel
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := nw.Run(nodes, b.N); !errors.Is(err, ErrRoundLimit) {
				b.Fatal(err)
			}
		})
	}
}

func benchFamilies() []string { return []string{"grid", "cylinderish", "stacked"} }

// BenchmarkRunBFS: op = a full BFS flood from vertex 0.
func BenchmarkRunBFS(b *testing.B) {
	for _, fam := range benchFamilies() {
		b.Run(fam, func(b *testing.B) {
			g := benchGraph(b, fam, 1024)
			nw := New(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Run(NewBFSNodes(nw, 0), 10*g.N()+100); err != nil {
					b.Fatal(err)
				}
			}
			st := nw.Stats()
			b.ReportMetric(float64(st.Rounds), "rounds")
			b.ReportMetric(float64(st.Messages), "msgs")
		})
	}
}

// BenchmarkRunPA: op = a pipelined part-wise aggregation (16 parts, OpSum)
// over a BFS tree.
func BenchmarkRunPA(b *testing.B) {
	for _, fam := range benchFamilies() {
		b.Run(fam, func(b *testing.B) {
			g := benchGraph(b, fam, 1024)
			tree, err := spanning.BFSTree(g, 0)
			if err != nil {
				b.Fatal(err)
			}
			partOf := make([]int, g.N())
			value := make([]int, g.N())
			for v := range partOf {
				partOf[v] = v % 16
				value[v] = 1
			}
			nw := New(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes := NewPANodes(nw, tree.Parent, 0, partOf, value, OpSum)
				if _, err := nw.Run(nodes, 100*g.N()+1000); err != nil {
					b.Fatal(err)
				}
			}
			st := nw.Stats()
			b.ReportMetric(float64(st.Rounds), "rounds")
			b.ReportMetric(float64(st.Messages), "msgs")
		})
	}
}

// BenchmarkRunDFS: op = a full message-level Awerbuch DFS from vertex 0.
func BenchmarkRunDFS(b *testing.B) {
	for _, fam := range benchFamilies() {
		b.Run(fam, func(b *testing.B) {
			g := benchGraph(b, fam, 1024)
			nw := New(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Run(NewAwerbuchNodes(nw, 0), 10*g.N()); err != nil {
					b.Fatal(err)
				}
			}
			st := nw.Stats()
			b.ReportMetric(float64(st.Rounds), "rounds")
			b.ReportMetric(float64(st.Messages), "msgs")
		})
	}
}
