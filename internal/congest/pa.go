package congest

import "fmt"

// AggOp is a part-wise aggregation operator.
type AggOp int

// Supported aggregation operators.
const (
	OpSum AggOp = iota + 1
	OpMin
	OpMax
)

func (op AggOp) combine(a, b int) int {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("congest: unknown AggOp %d", int(op)))
}

type paPair struct{ part, value int }

// PANode is the per-vertex program of the pipelined part-wise aggregation
// (Definition 6): every node holds a part ID and a value; at the end every
// node's Result holds the aggregate of the values in its part.
//
// The algorithm runs over a given global spanning tree: an upcast phase
// merges, at each node, the increasing-part-ID streams of its children with
// its own (part, value) pair, emitting one pair per round to the parent,
// followed by an end marker; a downcast phase streams each finalized
// aggregate back down exactly along the subtrees containing that part.
// Completion takes O(depth + k) rounds for k parts.
type PANode struct {
	info       NodeInfo
	op         AggOp
	part       int
	value      int
	parentPort int
	childPorts []int

	// Upcast state.
	buf        map[int][]paPair // child port -> buffered pairs (increasing part)
	ended      map[int]bool     // child port -> end marker received
	ownPending bool
	upDone     bool
	partsBelow map[int]map[int]bool // child port -> set of parts in its subtree

	// Root accumulates final aggregates during the upcast.
	isRoot bool
	finals []paPair // root only, in increasing part order

	// Downcast state.
	downQ     map[int][]paPair // child port -> queue of finalized pairs
	downEndAt map[int]bool     // child port -> end marker still to send
	recvEnd   bool             // parent's end marker received (root: upcast done)

	// Result is the aggregate of this node's part; HasResult reports
	// whether it has been delivered.
	Result    int
	HasResult bool
}

// NewPANodes builds the part-wise aggregation programs. parent describes a
// spanning tree of the whole network rooted at root; partOf and value give
// each node's part and input.
func NewPANodes(nw *Network, parent []int, root int, partOf, value []int, op AggOp) []Node {
	n := nw.G.N()
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if v != root {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		pn := &PANode{
			info:       nw.Info(v),
			op:         op,
			part:       partOf[v],
			value:      value[v],
			parentPort: -1,
			isRoot:     v == root,
			ownPending: true,
			buf:        map[int][]paPair{},
			ended:      map[int]bool{},
			partsBelow: map[int]map[int]bool{},
			downQ:      map[int][]paPair{},
			downEndAt:  map[int]bool{},
		}
		if v != root {
			pn.parentPort = pn.info.PortTo(parent[v])
		}
		for _, c := range children[v] {
			p := pn.info.PortTo(c)
			pn.childPorts = append(pn.childPorts, p)
			pn.partsBelow[p] = map[int]bool{}
		}
		nodes[v] = pn
	}
	return nodes
}

// CongestEventDriven marks the program as purely message-driven: every
// send is triggered either by round 0, by a received message, or by the
// node's own send in the previous round (pair streams and their end
// markers), so a quiet node stays quiet until woken.
func (pn *PANode) CongestEventDriven() {}

// Round implements Node.
func (pn *PANode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	for _, in := range recv {
		switch in.Msg.Kind {
		case msgPAPair:
			var pp pairPayload
			Unpack(in.Msg, &pp)
			p, v := pp.Part, pp.Value
			pn.buf[in.Port] = append(pn.buf[in.Port], paPair{p, v})
			pn.partsBelow[in.Port][p] = true
		case msgPAEnd:
			pn.ended[in.Port] = true
		case msgDownPair:
			var pp pairPayload
			Unpack(in.Msg, &pp)
			p, v := pp.Part, pp.Value
			if p == pn.part {
				pn.Result = v
				pn.HasResult = true
			}
			for _, cp := range pn.childPorts {
				if pn.partsBelow[cp][p] {
					pn.downQ[cp] = append(pn.downQ[cp], paPair{p, v})
				}
			}
		case msgDownEnd:
			pn.recvEnd = true
			for _, cp := range pn.childPorts {
				pn.downEndAt[cp] = true
			}
		}
	}

	var out []Outgoing

	// Upcast: emit at most one merged pair per round.
	if !pn.upDone {
		sentPair := false
		if pair, ok := pn.nextMerged(); ok {
			if pn.isRoot {
				pn.finals = append(pn.finals, pair)
				// Root may consume several pairs per round locally: drain.
				for {
					p2, ok2 := pn.nextMerged()
					if !ok2 {
						break
					}
					pn.finals = append(pn.finals, p2)
				}
			} else {
				out = append(out, Outgoing{Port: pn.parentPort,
					Msg: Pack(msgPAPair, &pairPayload{Part: pair.part, Value: pair.value})})
				sentPair = true
			}
		}
		// The end marker must wait for a round in which no pair was sent
		// (one message per edge per round).
		if !sentPair && pn.streamsDrained() {
			pn.upDone = true
			if pn.isRoot {
				// Seed the downcast: queue finals per child; deliver own.
				for _, pr := range pn.finals {
					if pr.part == pn.part {
						pn.Result = pr.value
						pn.HasResult = true
					}
					for _, cp := range pn.childPorts {
						if pn.partsBelow[cp][pr.part] {
							pn.downQ[cp] = append(pn.downQ[cp], pr)
						}
					}
				}
				pn.recvEnd = true
				for _, cp := range pn.childPorts {
					pn.downEndAt[cp] = true
				}
			} else {
				out = append(out, Outgoing{Port: pn.parentPort, Msg: Message{Kind: msgPAEnd}})
			}
		}
	}

	// Downcast: one pair (or the end marker) per child per round.
	done := pn.upDone && pn.HasResult
	for _, cp := range pn.childPorts {
		if q := pn.downQ[cp]; len(q) > 0 {
			out = append(out, Outgoing{Port: cp,
				Msg: Pack(msgDownPair, &pairPayload{Part: q[0].part, Value: q[0].value})})
			pn.downQ[cp] = q[1:]
			done = false
		} else if pn.recvEnd && pn.downEndAt[cp] {
			out = append(out, Outgoing{Port: cp, Msg: Message{Kind: msgDownEnd}})
			pn.downEndAt[cp] = false
		}
	}
	if !pn.recvEnd {
		done = false
	}
	return out, done
}

// nextMerged pops the smallest emittable part across the node's own pair and
// its children's streams, combining equal parts, or reports none available
// this round.
func (pn *PANode) nextMerged() (paPair, bool) {
	// Every child must have either ended or have a buffered head.
	for _, cp := range pn.childPorts {
		if !pn.ended[cp] && len(pn.buf[cp]) == 0 {
			return paPair{}, false
		}
	}
	const none = int(^uint(0) >> 1) // max int
	cand := none
	if pn.ownPending {
		cand = pn.part
	}
	for _, cp := range pn.childPorts {
		if b := pn.buf[cp]; len(b) > 0 && b[0].part < cand {
			cand = b[0].part
		}
	}
	if cand == none {
		return paPair{}, false
	}
	var agg int
	first := true
	if pn.ownPending && pn.part == cand {
		agg = pn.value
		first = false
		pn.ownPending = false
	}
	for _, cp := range pn.childPorts {
		if b := pn.buf[cp]; len(b) > 0 && b[0].part == cand {
			if first {
				agg = b[0].value
				first = false
			} else {
				agg = pn.op.combine(agg, b[0].value)
			}
			pn.buf[cp] = b[1:]
		}
	}
	return paPair{cand, agg}, true
}

// streamsDrained reports whether the node has merged everything it will
// ever receive.
func (pn *PANode) streamsDrained() bool {
	if pn.ownPending {
		return false
	}
	for _, cp := range pn.childPorts {
		if !pn.ended[cp] || len(pn.buf[cp]) > 0 {
			return false
		}
	}
	return true
}
