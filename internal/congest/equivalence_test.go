package congest

import (
	"fmt"
	"reflect"
	"testing"

	"planardfs/internal/gen"
)

// chatterNode is a deterministic pseudo-random traffic generator: each
// round it sends on a seeded-random subset of its ports with random-sized
// payloads, then halts after stopRound. Two instances with the same seed
// behave identically, so runs under different engines are comparable
// message for message. It records its full inbox history (a deep copy per
// round, since the engine recycles the recv buffer).
type chatterNode struct {
	deg       int
	state     uint64
	stopRound int
	history   [][]Incoming
}

func (c *chatterNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	rec := make([]Incoming, len(recv))
	copy(rec, recv)
	c.history = append(c.history, rec)
	if round >= c.stopRound {
		return nil, true
	}
	var send []Outgoing
	for p := 0; p < c.deg; p++ {
		c.state = c.state*6364136223846793005 + 1442695040888963407
		r := c.state >> 33
		if r%3 != 0 {
			continue
		}
		nargs := int(r>>8) % 4 // 0..3 args: at most 4 words, the default cap
		args := make([]int, nargs)
		for i := range args {
			args[i] = int((r >> (16 + 4*i)) & 0xff)
		}
		send = append(send, Outgoing{Port: p, Msg: Message{Kind: int(r % 16), Args: args}})
	}
	return send, false
}

// TestEnginesEquivalentRandomized locks the determinism contract across the
// sequential and sharded-parallel engines: over 20 random planar graphs
// with pseudo-random traffic, both engines must produce identical Stats
// (including the RoundMessages histogram and MaxEdgeCongestion) and
// identical per-node inbox orderings, round by round.
func TestEnginesEquivalentRandomized(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		family := "sparse"
		if trial%2 == 1 {
			family = "stacked"
		}
		n := 96 + 13*trial
		in, err := gen.ByName(family, n, int64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		g := in.G
		run := func(parallel bool, workers int) ([][][]Incoming, Stats, int) {
			nw := New(g)
			nw.Parallel = parallel
			nw.Workers = workers
			nodes := make([]Node, g.N())
			for v := range nodes {
				nodes[v] = &chatterNode{
					deg:       g.Degree(v),
					state:     uint64(trial)<<32 | uint64(v)*2654435761 + 1,
					stopRound: 12,
				}
			}
			rounds, err := nw.Run(nodes, 100)
			if err != nil {
				t.Fatalf("trial %d parallel=%v: %v", trial, parallel, err)
			}
			hist := make([][][]Incoming, g.N())
			for v := range nodes {
				hist[v] = nodes[v].(*chatterNode).history
			}
			return hist, nw.Stats(), rounds
		}
		// Force real sharding (several workers) regardless of host CPU
		// count; vary the worker count across trials to vary shard bounds.
		hPar, sPar, rPar := run(true, 2+trial%6)
		hSeq, sSeq, rSeq := run(false, 0)
		if rPar != rSeq {
			t.Fatalf("trial %d (%s n=%d): rounds %d != %d", trial, family, g.N(), rPar, rSeq)
		}
		if !reflect.DeepEqual(sPar, sSeq) {
			t.Fatalf("trial %d (%s n=%d): stats diverge\nparallel:   %+v\nsequential: %+v",
				trial, family, g.N(), sPar, sSeq)
		}
		if sPar.MaxEdgeCongestion == 0 || len(sPar.RoundMessages) == 0 {
			t.Fatalf("trial %d: degenerate run, stats %+v", trial, sPar)
		}
		for v := range hPar {
			if !reflect.DeepEqual(hPar[v], hSeq[v]) {
				t.Fatalf("trial %d (%s n=%d): node %d inbox history diverges:\nparallel:   %v\nsequential: %v",
					trial, family, g.N(), v, describeHistory(hPar[v]), describeHistory(hSeq[v]))
			}
		}
	}
}

func describeHistory(h [][]Incoming) string {
	s := ""
	for r, recv := range h {
		s += fmt.Sprintf("r%d:%v ", r, recv)
	}
	return s
}
