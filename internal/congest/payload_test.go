package congest

import "testing"

func TestPackUnpackRoundTrip(t *testing.T) {
	m := Pack(msgBFS, &intPayload{Val: 42})
	if m.Kind != msgBFS || len(m.Args) != 1 {
		t.Fatalf("Pack(msgBFS, 42) = %+v", m)
	}
	var got intPayload
	Unpack(m, &got)
	if got.Val != 42 {
		t.Fatalf("round trip: got %d, want 42", got.Val)
	}

	pm := Pack(msgPAPair, &pairPayload{Part: 7, Value: -3})
	var gp pairPayload
	Unpack(pm, &gp)
	if gp.Part != 7 || gp.Value != -3 {
		t.Fatalf("pair round trip: got %+v", gp)
	}
}

// TestPayloadWithinWordBudget pins the wire size of every built-in payload
// to the default 4-word message budget the engine enforces at runtime.
func TestPayloadWithinWordBudget(t *testing.T) {
	for name, p := range map[string]Payload{
		"int":  &intPayload{Val: 1},
		"pair": &pairPayload{Part: 1, Value: 2},
	} {
		if w := Pack(0, p).Words(); w > 4 {
			t.Errorf("payload %s is %d words, exceeding the default budget", name, w)
		}
	}
}
