package congest

// AwerbuchNode is the per-vertex program of the classic distributed DFS of
// Awerbuch (1985), with the standard neighbour-notification improvement: a
// single token performs a depth-first traversal; when a node is first
// visited it announces VISITED to its neighbours, so the token is only ever
// forwarded to unvisited nodes and never traverses a non-tree edge. The
// traversal completes in at most 2(n-1)+1 rounds.
//
// After the run, ParentID and Depth describe the DFS tree rooted at the
// start node.
type AwerbuchNode struct {
	info         NodeInfo
	visited      bool
	holdsToken   bool
	justVisited  bool
	parentPort   int
	knownVisited []bool

	ParentID int
	Depth    int
}

// NewAwerbuchNodes builds the DFS programs with the token starting at root.
func NewAwerbuchNodes(nw *Network, root int) []Node {
	nodes := make([]Node, nw.G.N())
	for v := 0; v < nw.G.N(); v++ {
		an := &AwerbuchNode{
			info:         nw.Info(v),
			parentPort:   -1,
			knownVisited: make([]bool, nw.G.Degree(v)),
			ParentID:     -1,
		}
		if v == root {
			an.visited = true
			an.holdsToken = true
			an.justVisited = true
		}
		nodes[v] = an
	}
	return nodes
}

// CongestEventDriven marks the program as purely message-driven (the
// token, VISITED and RETURN messages drive every transition).
func (an *AwerbuchNode) CongestEventDriven() {}

// Round implements Node.
func (an *AwerbuchNode) Round(round int, recv []Incoming) ([]Outgoing, bool) {
	for _, in := range recv {
		switch in.Msg.Kind {
		case msgVisited:
			an.knownVisited[in.Port] = true
		case msgToken:
			// The token is only ever sent to unvisited nodes.
			an.visited = true
			an.justVisited = true
			an.holdsToken = true
			an.parentPort = in.Port
			an.ParentID = an.info.Neighbors[in.Port]
			an.Depth = in.Msg.Args[0] + 1
			an.knownVisited[in.Port] = true
		case msgReturn:
			an.knownVisited[in.Port] = true
			an.holdsToken = true
		}
	}
	if !an.holdsToken {
		return nil, an.visited
	}

	var out []Outgoing
	// Forward the token to the first unvisited neighbour, if any.
	target := -1
	for p := range an.info.Neighbors {
		if !an.knownVisited[p] && p != an.parentPort {
			target = p
			break
		}
	}
	if target >= 0 {
		out = append(out, Outgoing{Port: target, Msg: Message{Kind: msgToken, Args: []int{an.Depth}}})
		an.holdsToken = false
	} else if an.parentPort >= 0 {
		out = append(out, Outgoing{Port: an.parentPort, Msg: Message{Kind: msgReturn}})
		an.holdsToken = false
	} else {
		// Root with no unvisited neighbours: traversal complete.
		an.holdsToken = false
	}
	if an.justVisited {
		an.justVisited = false
		for p := range an.info.Neighbors {
			if p != an.parentPort && p != target {
				out = append(out, Outgoing{Port: p, Msg: Message{Kind: msgVisited}})
			}
		}
	}
	return out, an.visited && !an.holdsToken
}
