// Package trace is the structured observability subsystem of the CONGEST
// stack: hierarchical spans, counters, gauges and fixed-bucket histograms,
// exported as JSONL event logs or Chrome trace_event files.
//
// The subsystem is deterministic by construction. Spans are stamped with a
// virtual round clock — the simulated CONGEST round count — never with wall
// time, so two runs of the same seeded workload produce byte-identical
// exports. The clock is advanced explicitly by the instrumented layers: the
// message-level simulator advances it one round at a time, the charged
// layers (separator phases, lemma subroutines, communication primitives)
// advance it by the round cost their cost model assigns.
//
// The package has no dependencies beyond the standard library and costs
// nothing when disabled: Nop implements Tracer with empty methods, and every
// instrumented hot path guards its bookkeeping behind Enabled().
package trace

// Layer identifies the algorithm layer a span belongs to. Each layer is
// rendered as one "thread" row in the Chrome trace_event export, so a run
// opens in Perfetto as a stacked timeline: network rounds at the bottom,
// the DFS driver at the top.
type Layer int

// The instrumented layers, bottom-up.
const (
	// LayerNetwork is one message-level CONGEST round.
	LayerNetwork Layer = iota
	// LayerPrimitive is one block of communication-primitive invocations
	// (part-wise aggregation, tree aggregation, local exchange).
	LayerPrimitive
	// LayerLemma is one lemma subroutine of Sections 5.2/6.1 (DFS-ORDER,
	// MARK-PATH, LCA, DETECT-FACE, HIDDEN, RE-ROOT, spanning forest).
	LayerLemma
	// LayerSeparator is one phase of the Theorem 1 separator driver.
	LayerSeparator
	// LayerDFS is one recursion phase or JOIN sub-phase of the Theorem 2
	// DFS driver.
	LayerDFS
	// LayerCert is one certification phase (prover labelling, verifier
	// label exchange, verdict aggregation) of internal/cert.
	LayerCert
	// LayerChaos is one supervised-recovery phase of internal/chaos (a
	// produce/certify attempt, a fallback switch, a terminal report).
	LayerChaos

	numLayers
)

func (l Layer) String() string {
	switch l {
	case LayerNetwork:
		return "network"
	case LayerPrimitive:
		return "primitive"
	case LayerLemma:
		return "lemma"
	case LayerSeparator:
		return "separator"
	case LayerDFS:
		return "dfs"
	case LayerCert:
		return "cert"
	case LayerChaos:
		return "chaos"
	}
	return "unknown"
}

// Attr is one span attribute. Attributes are integer-valued: everything the
// stack reports (rounds, message counts, sizes, phase identifiers) is a
// count, and integer attributes keep exports bit-reproducible.
type Attr struct {
	Key string
	Val int64
}

// Span is an open interval on the round clock. SetAttr attaches a key/value
// pair; End closes the span at the current clock. Methods on a span from
// Nop are no-ops.
type Span interface {
	SetAttr(key string, val int64)
	End()
}

// Tracer is the instrumentation sink threaded through the execution layers.
// Implementations: *Recorder (records everything) and Nop (records
// nothing). All methods must be safe for concurrent use.
type Tracer interface {
	// Enabled reports whether the tracer records anything; hot paths guard
	// per-event bookkeeping behind it.
	Enabled() bool
	// StartSpan opens a span on the layer at the current round clock.
	// Spans nest: a span started while another is open becomes its child.
	StartSpan(layer Layer, name string) Span
	// Advance moves the virtual round clock forward by d rounds.
	Advance(d int64)
	// Now returns the current round clock.
	Now() int64
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// SetGauge sets the named gauge to val.
	SetGauge(name string, val int64)
	// Observe adds val to the named fixed-bucket histogram.
	Observe(name string, val int64)
	// Sample appends a (round, val) point to the named time series,
	// rendered as a counter track in the Chrome export.
	Sample(name string, val int64)
}

// Nop is the disabled tracer: every method is empty, Enabled is false.
var Nop Tracer = nopTracer{}

// OrNop returns t, or Nop when t is nil, so call sites never need a nil
// check.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

type nopTracer struct{}

type nopSpan struct{}

func (nopSpan) SetAttr(string, int64) {}
func (nopSpan) End()                  {}

func (nopTracer) Enabled() bool                { return false }
func (nopTracer) StartSpan(Layer, string) Span { return nopSpan{} }
func (nopTracer) Advance(int64)                {}
func (nopTracer) Now() int64                   { return 0 }
func (nopTracer) Count(string, int64)          {}
func (nopTracer) SetGauge(string, int64)       {}
func (nopTracer) Observe(string, int64)        {}
func (nopTracer) Sample(string, int64)         {}
