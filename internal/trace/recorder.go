package trace

import (
	"sort"
	"sync"
)

// SpanEvent is one recorded (closed or still-open) span.
type SpanEvent struct {
	// ID is the span's sequential identifier (assigned at StartSpan, so
	// IDs order spans by start time, ties by start order).
	ID int
	// Parent is the ID of the enclosing span, -1 at the top level.
	Parent int
	Layer  Layer
	Name   string
	// Start and End are round-clock stamps. End is -1 while the span is
	// open; exporters close open spans at the export-time clock.
	Start, End int64
	Attrs      []Attr
}

// SamplePoint is one point of a recorded time series.
type SamplePoint struct {
	Round int64
	Val   int64
}

// Recorder implements Tracer by recording everything in memory. A Recorder
// is safe for concurrent use; recorded state is deterministic for
// deterministic workloads (sequential IDs, explicit clock, no wall time).
type Recorder struct {
	mu       sync.Mutex
	clock    int64
	spans    []SpanEvent
	stack    []int // IDs of open spans, innermost last
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
	samples  map[string][]SamplePoint
}

// NewRecorder returns an empty recorder with the round clock at 0.
func NewRecorder() *Recorder {
	return &Recorder{
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string]*Histogram{},
		samples:  map[string][]SamplePoint{},
	}
}

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

type recorderSpan struct {
	r  *Recorder
	id int
}

// StartSpan implements Tracer.
func (r *Recorder) StartSpan(layer Layer, name string) Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := len(r.spans)
	parent := -1
	if len(r.stack) > 0 {
		parent = r.stack[len(r.stack)-1]
	}
	r.spans = append(r.spans, SpanEvent{
		ID: id, Parent: parent, Layer: layer, Name: name,
		Start: r.clock, End: -1,
	})
	r.stack = append(r.stack, id)
	return recorderSpan{r: r, id: id}
}

func (s recorderSpan) SetAttr(key string, val int64) {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	ev := &s.r.spans[s.id]
	ev.Attrs = append(ev.Attrs, Attr{Key: key, Val: val})
}

func (s recorderSpan) End() {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	ev := &s.r.spans[s.id]
	if ev.End < 0 {
		ev.End = s.r.clock
	}
	// Pop the span from the open stack (normally the innermost).
	for i := len(s.r.stack) - 1; i >= 0; i-- {
		if s.r.stack[i] == s.id {
			s.r.stack = append(s.r.stack[:i], s.r.stack[i+1:]...)
			break
		}
	}
}

// Advance implements Tracer.
func (r *Recorder) Advance(d int64) {
	r.mu.Lock()
	r.clock += d
	r.mu.Unlock()
}

// Now implements Tracer.
func (r *Recorder) Now() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock
}

// Count implements Tracer.
func (r *Recorder) Count(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge implements Tracer.
func (r *Recorder) SetGauge(name string, val int64) {
	r.mu.Lock()
	r.gauges[name] = val
	r.mu.Unlock()
}

// Observe implements Tracer.
func (r *Recorder) Observe(name string, val int64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	h.Observe(val)
	r.mu.Unlock()
}

// Sample implements Tracer.
func (r *Recorder) Sample(name string, val int64) {
	r.mu.Lock()
	r.samples[name] = append(r.samples[name], SamplePoint{Round: r.clock, Val: val})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans, open spans closed at the
// current clock.
func (r *Recorder) Spans() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, len(r.spans))
	copy(out, r.spans)
	for i := range out {
		if out[i].End < 0 {
			out[i].End = r.clock
		}
	}
	return out
}

// Counter returns the current value of the named counter.
func (r *Recorder) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the current value of the named gauge.
func (r *Recorder) Gauge(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Histogram returns a snapshot of the named histogram, or nil.
func (r *Recorder) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return nil
	}
	return h.Clone()
}

// CounterNames returns the sorted names of all counters.
func (r *Recorder) CounterNames() []string { return r.sortedKeys(kindCounter) }

// GaugeNames returns the sorted names of all gauges.
func (r *Recorder) GaugeNames() []string { return r.sortedKeys(kindGauge) }

// HistogramNames returns the sorted names of all histograms.
func (r *Recorder) HistogramNames() []string { return r.sortedKeys(kindHist) }

// SampleNames returns the sorted names of all time series.
func (r *Recorder) SampleNames() []string { return r.sortedKeys(kindSample) }

// Samples returns a copy of the named time series.
func (r *Recorder) Samples(name string) []SamplePoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SamplePoint(nil), r.samples[name]...)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHist
	kindSample
)

func (r *Recorder) sortedKeys(kind metricKind) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	switch kind {
	case kindCounter:
		for k := range r.counters {
			out = append(out, k)
		}
	case kindGauge:
		for k := range r.gauges {
			out = append(out, k)
		}
	case kindHist:
		for k := range r.hists {
			out = append(out, k)
		}
	case kindSample:
		for k := range r.samples {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
