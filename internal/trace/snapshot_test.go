package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricsSnapshotStableEncoding(t *testing.T) {
	r := NewRecorder()
	r.Count("b.second", 2)
	r.Count("a.first", 1)
	r.SetGauge("z.gauge", 9)
	r.Observe("lat", 5)
	r.Observe("lat", 300)
	r.Advance(7)

	s := r.MetricsSnapshot()
	enc1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := json.Marshal(r.MetricsSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("two snapshots of an idle recorder differ:\n%s\n%s", enc1, enc2)
	}
	if s.Counters[0].Name != "a.first" || s.Counters[1].Name != "b.second" {
		t.Fatalf("counters not sorted by name: %+v", s.Counters)
	}
	if s.Clock != 7 {
		t.Fatalf("clock = %d, want 7", s.Clock)
	}
	if s.Histograms[0].Hist.N != 2 || s.Histograms[0].Mean != 152.5 {
		t.Fatalf("histogram summary wrong: %+v", s.Histograms[0])
	}
}

func TestMetricsSnapshotEmptySectionsAreArrays(t *testing.T) {
	enc, err := json.Marshal(NewRecorder().MetricsSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, []byte("null")) {
		t.Fatalf("empty snapshot encodes null sections: %s", enc)
	}
}

func TestMetricsSnapshotIsDefensiveCopy(t *testing.T) {
	r := NewRecorder()
	r.Count("c", 1)
	r.Observe("h", 4)
	s := r.MetricsSnapshot()

	// Mutating the recorder after the snapshot must not change it...
	r.Count("c", 100)
	r.Observe("h", 1000)
	if s.Counters[0].Value != 1 {
		t.Fatalf("snapshot counter changed after recorder mutation: %d", s.Counters[0].Value)
	}
	if s.Histograms[0].Hist.N != 1 {
		t.Fatalf("snapshot histogram changed after recorder mutation: n=%d", s.Histograms[0].Hist.N)
	}
	// ...and mutating the snapshot must not reach the recorder.
	s.Histograms[0].Hist.Counts[0] = 999
	if h := r.Histogram("h"); h.Counts[0] == 999 {
		t.Fatal("snapshot shares histogram storage with the recorder")
	}
}

// TestMetricsSnapshotConcurrent races scrapers against writers; run with
// -race this asserts the snapshot path never hands shared state to readers.
func TestMetricsSnapshotConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Count("writes", 1)
				r.Observe("obs", 17)
				r.SetGauge("g", 3)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := r.MetricsSnapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		r.Count("writes", 1)
	}
	close(stop)
	wg.Wait()
}
