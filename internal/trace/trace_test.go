package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSpanNestingAndClock(t *testing.T) {
	r := NewRecorder()
	outer := r.StartSpan(LayerSeparator, "find")
	r.Advance(3)
	inner := r.StartSpan(LayerLemma, "mark-path")
	inner.SetAttr("iterations", 7)
	r.Advance(5)
	inner.End()
	outer.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != spans[0].ID {
		t.Fatalf("parentage wrong: %+v", spans)
	}
	if spans[0].Start != 0 || spans[0].End != 8 {
		t.Fatalf("outer span [%d,%d], want [0,8]", spans[0].Start, spans[0].End)
	}
	if spans[1].Start != 3 || spans[1].End != 8 {
		t.Fatalf("inner span [%d,%d], want [3,8]", spans[1].Start, spans[1].End)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0] != (Attr{"iterations", 7}) {
		t.Fatalf("attrs = %+v", spans[1].Attrs)
	}
	if r.Now() != 8 {
		t.Fatalf("clock = %d, want 8", r.Now())
	}
}

func TestMetrics(t *testing.T) {
	r := NewRecorder()
	r.Count("msgs", 5)
	r.Count("msgs", 7)
	r.SetGauge("depth", 3)
	r.SetGauge("depth", 4)
	for _, v := range []int64{1, 2, 3, 100, 5000} {
		r.Observe("load", v)
	}
	if got := r.Counter("msgs"); got != 12 {
		t.Fatalf("counter = %d, want 12", got)
	}
	if got := r.Gauge("depth"); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h := r.Histogram("load")
	if h.N != 5 || h.Sum != 5106 || h.Min != 1 || h.Max != 5000 {
		t.Fatalf("histogram = %+v", h)
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != h.N {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.N)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 2} // <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {5,100}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
}

// workload drives a fixed, seedless sequence of tracer calls.
func workload(tr Tracer) {
	root := tr.StartSpan(LayerDFS, "build")
	for i := 0; i < 3; i++ {
		s := tr.StartSpan(LayerSeparator, "phase")
		s.SetAttr("i", int64(i))
		tr.Advance(int64(i + 1))
		tr.Count("rounds", int64(i+1))
		tr.Observe("per-phase", int64(i+1))
		tr.Sample("clock", tr.Now())
		s.End()
	}
	root.End()
}

func TestExportsDeterministic(t *testing.T) {
	var outs [][]byte
	for run := 0; run < 2; run++ {
		r := NewRecorder()
		workload(r)
		var jsonl, chrome bytes.Buffer
		if err := r.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, jsonl.Bytes(), chrome.Bytes())
	}
	if !bytes.Equal(outs[0], outs[2]) {
		t.Fatal("JSONL export differs between identical runs")
	}
	if !bytes.Equal(outs[1], outs[3]) {
		t.Fatal("Chrome export differs between identical runs")
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := NewRecorder()
	workload(r)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	metas, completes, counters := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			completes++
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if metas != int(numLayers) {
		t.Fatalf("metadata events = %d, want %d", metas, int(numLayers))
	}
	if completes != 4 {
		t.Fatalf("complete events = %d, want 4", completes)
	}
	if counters != 3 {
		t.Fatalf("counter events = %d, want 3", counters)
	}
}

func TestNopIsSilent(t *testing.T) {
	workload(Nop) // must not panic
	if Nop.Enabled() {
		t.Fatal("Nop reports enabled")
	}
	if OrNop(nil) != Nop {
		t.Fatal("OrNop(nil) != Nop")
	}
	r := NewRecorder()
	if OrNop(r) != Tracer(r) {
		t.Fatal("OrNop(r) != r")
	}
}
