package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// attrMap flattens ordered attributes into a JSON object. encoding/json
// marshals map keys sorted, so the output is deterministic.
func attrMap(attrs []Attr) map[string]int64 {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]int64, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// jsonlRecord is one line of the JSONL export.
type jsonlRecord struct {
	Type   string           `json:"type"`
	Name   string           `json:"name,omitempty"`
	ID     *int             `json:"id,omitempty"`
	Parent *int             `json:"parent,omitempty"`
	Layer  string           `json:"layer,omitempty"`
	Start  *int64           `json:"start,omitempty"`
	End    *int64           `json:"end,omitempty"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
	Value  *int64           `json:"value,omitempty"`
	Round  *int64           `json:"round,omitempty"`
	Clock  *int64           `json:"clock,omitempty"`
	Hist   *Histogram       `json:"hist,omitempty"`
}

// WriteJSONL writes the full recorded state as one JSON object per line:
// a meta line, every span (by ID), every counter, gauge and histogram
// (names sorted), and every time-series point. Output is deterministic for
// deterministic workloads.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	clock := r.Now()
	if err := enc.Encode(jsonlRecord{Type: "meta", Clock: &clock}); err != nil {
		return err
	}
	for _, ev := range r.Spans() {
		ev := ev
		rec := jsonlRecord{
			Type: "span", Name: ev.Name, Layer: ev.Layer.String(),
			ID: &ev.ID, Parent: &ev.Parent,
			Start: &ev.Start, End: &ev.End,
			Attrs: attrMap(ev.Attrs),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, name := range r.CounterNames() {
		v := r.Counter(name)
		if err := enc.Encode(jsonlRecord{Type: "counter", Name: name, Value: &v}); err != nil {
			return err
		}
	}
	for _, name := range r.GaugeNames() {
		v := r.Gauge(name)
		if err := enc.Encode(jsonlRecord{Type: "gauge", Name: name, Value: &v}); err != nil {
			return err
		}
	}
	for _, name := range r.HistogramNames() {
		if err := enc.Encode(jsonlRecord{Type: "histogram", Name: name, Hist: r.Histogram(name)}); err != nil {
			return err
		}
	}
	for _, name := range r.SampleNames() {
		for _, p := range r.Samples(name) {
			p := p
			if err := enc.Encode(jsonlRecord{Type: "sample", Name: name, Round: &p.Round, Value: &p.Val}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format. The round
// clock serves as the microsecond timebase: one simulated round renders as
// one microsecond, and each algorithm layer renders as one thread.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Ts   int64            `json:"ts"`
	Dur  *int64           `json:"dur,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeMetaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   int64             `json:"ts"`
	Args map[string]string `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans and time series in the Chrome
// trace_event format, loadable directly in Perfetto or chrome://tracing.
// pid is 1; tid is the layer (a thread_name metadata event labels each);
// ts is the span's start round; dur its round extent. Counter samples
// render as "C" counter tracks. Output is deterministic.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	var events []json.RawMessage
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		events = append(events, raw)
		return nil
	}
	for l := Layer(0); l < numLayers; l++ {
		meta := chromeMetaEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: int(l),
			Args: map[string]string{"name": l.String()},
		}
		if err := add(meta); err != nil {
			return err
		}
	}
	for _, ev := range r.Spans() {
		dur := ev.End - ev.Start
		if dur < 0 {
			dur = 0
		}
		ce := chromeEvent{
			Name: ev.Name, Ph: "X", Pid: 1, Tid: int(ev.Layer),
			Ts: ev.Start, Dur: &dur, Args: attrMap(ev.Attrs),
		}
		if err := add(ce); err != nil {
			return err
		}
	}
	for _, name := range r.SampleNames() {
		for _, p := range r.Samples(name) {
			ce := chromeEvent{
				Name: name, Ph: "C", Pid: 1, Tid: 0,
				Ts: p.Round, Args: map[string]int64{"value": p.Val},
			}
			if err := add(ce); err != nil {
				return err
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
