package trace

import (
	"fmt"
	"io"
)

// DefaultBounds are the histogram bucket upper bounds used when none are
// given: powers of two from 1 to 2^20, with an overflow bucket above.
// Everything the stack observes (rounds per invocation, messages per round,
// per-edge loads, part sizes) is a count whose interesting structure is its
// order of magnitude, so power-of-two buckets fit every metric.
var DefaultBounds = func() []int64 {
	var b []int64
	for x := int64(1); x <= 1<<20; x *= 2 {
		b = append(b, x)
	}
	return b
}()

// Histogram is a fixed-bucket histogram over int64 observations. Counts[i]
// tallies observations <= Bounds[i] (and greater than Bounds[i-1]); the
// final Counts entry is the overflow bucket.
type Histogram struct {
	Bounds []int64
	Counts []int64
	N      int64
	Sum    int64
	Min    int64
	Max    int64
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (strictly increasing), or DefaultBounds when nil.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds
	}
	return &Histogram{
		Bounds: append([]int64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Observe adds one observation.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Bounds = append([]int64(nil), h.Bounds...)
	c.Counts = append([]int64(nil), h.Counts...)
	return &c
}

// WriteMetrics writes a human-readable table of every counter, gauge and
// histogram to w, names sorted, suitable for the -metrics flag of the CLIs.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if names := r.CounterNames(); len(names) > 0 {
		fmt.Fprintf(w, "%-40s %14s\n", "counter", "value")
		for _, name := range names {
			fmt.Fprintf(w, "%-40s %14d\n", name, r.Counter(name))
		}
	}
	if names := r.GaugeNames(); len(names) > 0 {
		fmt.Fprintf(w, "%-40s %14s\n", "gauge", "value")
		for _, name := range names {
			fmt.Fprintf(w, "%-40s %14d\n", name, r.Gauge(name))
		}
	}
	for _, name := range r.HistogramNames() {
		h := r.Histogram(name)
		fmt.Fprintf(w, "histogram %s: n=%d sum=%d min=%d max=%d mean=%.2f\n",
			name, h.N, h.Sum, h.Min, h.Max, h.Mean())
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(w, "  le %-12d %10d\n", h.Bounds[i], c)
			} else {
				fmt.Fprintf(w, "  le %-12s %10d\n", "+inf", c)
			}
		}
	}
	return nil
}
