package trace

import (
	"encoding/json"
	"sort"
)

// MetricsSnapshot is a point-in-time, self-contained copy of a recorder's
// counters, gauges and histograms, taken atomically under the recorder
// lock. It shares no memory with the live recorder, so readers (HTTP
// scrapers, exporters) can hold or re-encode it while the recorder keeps
// mutating, and its JSON encoding is byte-stable: every section is an
// ordered list sorted by name, never a Go map, so two encodings of the
// same snapshot are identical and concurrent scrapes of an idle recorder
// agree byte for byte.
type MetricsSnapshot struct {
	// Clock is the recorder's round clock at snapshot time.
	Clock int64 `json:"clock"`
	// Counters, Gauges and Histograms are sorted by Name.
	Counters   []NamedValue     `json:"counters"`
	Gauges     []NamedValue     `json:"gauges"`
	Histograms []NamedHistogram `json:"histograms"`
}

// NamedValue is one counter or gauge reading.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedHistogram is one histogram snapshot with derived summary stats.
type NamedHistogram struct {
	Name string `json:"name"`
	// Hist is a deep copy of the histogram (bounds, counts, extremes).
	Hist *Histogram `json:"hist"`
	// Mean duplicates Hist.Mean() for plain JSON consumers.
	Mean float64 `json:"mean"`
}

// MetricsSnapshot returns a consistent snapshot of all metrics. The whole
// snapshot is taken under one lock acquisition, so a scrape never observes
// a counter from before an update together with a histogram from after it;
// every slice, map-derived list and histogram is a defensive copy.
func (r *Recorder) MetricsSnapshot() *MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &MetricsSnapshot{
		Clock:      r.clock,
		Counters:   make([]NamedValue, 0, len(r.counters)),
		Gauges:     make([]NamedValue, 0, len(r.gauges)),
		Histograms: make([]NamedHistogram, 0, len(r.hists)),
	}
	for _, name := range sortedMapKeys(r.counters) {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: r.counters[name]})
	}
	for _, name := range sortedMapKeys(r.gauges) {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: r.gauges[name]})
	}
	for _, name := range sortedMapKeys(r.hists) {
		h := r.hists[name].Clone()
		s.Histograms = append(s.Histograms, NamedHistogram{Name: name, Hist: h, Mean: h.Mean()})
	}
	return s
}

// MarshalJSON keeps the zero-length sections as empty arrays (never null)
// so consumers can index unconditionally.
func (s *MetricsSnapshot) MarshalJSON() ([]byte, error) {
	type alias MetricsSnapshot
	a := alias(*s)
	if a.Counters == nil {
		a.Counters = []NamedValue{}
	}
	if a.Gauges == nil {
		a.Gauges = []NamedValue{}
	}
	if a.Histograms == nil {
		a.Histograms = []NamedHistogram{}
	}
	return json.Marshal(a)
}

// sortedMapKeys returns the keys of m in ascending order.
func sortedMapKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
