package planardfs

// The benchmark harness: one benchmark per experiment of EXPERIMENTS.md
// (E1-E12). Each benchmark regenerates the corresponding table rows via
// internal/exp and reports the experiment's headline quantities as
// benchmark metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. The cmd/sepbench and cmd/dfsbench tools print the same rows
// as human-readable tables.

import (
	"testing"

	"planardfs/internal/congest"
	"planardfs/internal/exp"
	"planardfs/internal/shortcut"
	"planardfs/internal/trace"
)

// benchSizes is the default sweep; benchmarks use the largest feasible
// point per family and report normalized quantities.
var benchSizes = []int{256, 1024, 4096}

func BenchmarkE1SeparatorRounds(b *testing.B) {
	for _, fam := range []string{"grid", "stacked", "sparse"} {
		b.Run(fam, func(b *testing.B) {
			var rows []exp.E1Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = exp.E1([]string{fam}, benchSizes, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.PaperRounds), "paper-rounds")
			b.ReportMetric(float64(last.PipelinedRounds), "pipelined-rounds")
			b.ReportMetric(last.NormPaper, "rounds/Dlog4")
			b.ReportMetric(float64(last.SepLen), "sep-len")
			// Cross-check the formula-level accounting with the metrics
			// registry of an instrumented run at the largest size.
			rec := trace.NewRecorder()
			if _, err := exp.TraceSeparator(fam, benchSizes[len(benchSizes)-1], 1, rec); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rec.Counter("rounds.charged")), "traced-rounds")
			b.ReportMetric(float64(rec.Counter("ops.pa")), "traced-pa-ops")
		})
	}
}

func BenchmarkE2DFSRounds(b *testing.B) {
	for _, fam := range []string{"grid", "stacked"} {
		b.Run(fam, func(b *testing.B) {
			var rows []exp.E2Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = exp.E2([]string{fam}, []int{256, 1024}, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.PaperRounds), "paper-rounds")
			b.ReportMetric(float64(last.PipelinedRounds), "pipelined-rounds")
			b.ReportMetric(float64(last.AwerbuchMeasured), "awerbuch-rounds")
			b.ReportMetric(float64(last.Phases), "phases")
			// Metrics registry of an instrumented DFS run: charged rounds of
			// the Theorem 2 pipeline plus the simulated baseline rounds.
			rec := trace.NewRecorder()
			if _, err := exp.TraceDFS(fam, 1024, 1, rec); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rec.Counter("rounds.charged")), "traced-rounds")
			b.ReportMetric(float64(rec.Counter("congest.rounds")), "traced-awe-rounds")
		})
	}
}

func BenchmarkE2Awerbuch(b *testing.B) {
	in, err := NewStackedTriangulation(4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		_, stats, err := RunAwerbuchDFS(in.G, 0)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(AwerbuchRounds(in.G.N())), "bound")
}

func BenchmarkE3SeparatorQuality(b *testing.B) {
	var rows []exp.E3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E3([]string{"stacked", "sparse", "polygon"}, 300, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	balanced, trials, exhaustive := 0, 0, 0
	worst := 0.0
	for _, r := range rows {
		balanced += r.Balanced
		trials += r.Trials
		exhaustive += r.Exhaustive
		if r.WorstRatio > worst {
			worst = r.WorstRatio
		}
	}
	if balanced != trials || exhaustive != 0 {
		b.Fatalf("E3 violation: %d/%d balanced, %d exhaustive", balanced, trials, exhaustive)
	}
	b.ReportMetric(float64(balanced)/float64(trials)*100, "balanced-%")
	b.ReportMetric(worst, "worst-ratio")
}

func BenchmarkE4WeightExactness(b *testing.B) {
	var rows []exp.E4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E4([]string{"stacked", "sparse"}, 40, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	edges, exact := 0, 0
	for _, r := range rows {
		edges += r.Edges
		exact += r.Exact
	}
	if edges != exact {
		b.Fatalf("E4 violation: %d of %d exact", exact, edges)
	}
	b.ReportMetric(float64(edges), "edges-verified")
}

func BenchmarkE5DFSOrder(b *testing.B) {
	var rows []exp.E5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E5([]string{"grid", "stacked"}, 4096, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Phases), "phases")
	b.ReportMetric(float64(rows[0].TreeDepth), "tree-depth")
	b.ReportMetric(float64(rows[0].LogBound), "log-bound")
}

func BenchmarkE6MarkPath(b *testing.B) {
	var rows []exp.E6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E6([]string{"grid", "stacked"}, 4096, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Iterations), "iterations")
	b.ReportMetric(float64(rows[0].PathLen), "path-len")
	b.ReportMetric(float64(rows[0].LogSquared), "log2n-squared")
}

func BenchmarkE7JoinPhases(b *testing.B) {
	var rows []exp.E7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E7([]string{"grid", "stacked"}, 1024, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxJoin := 0
	for _, r := range rows {
		if r.MaxJoin > maxJoin {
			maxJoin = r.MaxJoin
		}
	}
	b.ReportMetric(float64(maxJoin), "max-join-subphases")
	b.ReportMetric(float64(rows[0].LogBound), "log-bound")
}

func BenchmarkE8PartwiseAggregation(b *testing.B) {
	var rows []exp.E8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E8("grid", 1024, []int{1, 16, 128}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.MeasuredRounds), "measured-rounds")
	b.ReportMetric(float64(last.PipelinedEst), "pipelined-est")
	b.ReportMetric(float64(last.MaxCongestion), "max-congestion")
	b.ReportMetric(float64(last.MaxDilation), "max-dilation")
	// Metrics registry of an instrumented message-level PA run.
	in, err := NewGrid(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	value := make([]int, in.G.N())
	for v := range partOf {
		partOf[v] = v % 16
		value[v] = 1
	}
	part, err := shortcut.NewPartition(partOf)
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder()
	if _, err := shortcut.RunPATraced(in.G, 0, part, value, congest.OpSum, rec); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rec.Counter("congest.rounds")), "traced-pa-rounds")
	b.ReportMetric(float64(rec.Gauge("congest.max_edge_congestion")), "traced-max-congestion")
}

func BenchmarkE9RecursionDepth(b *testing.B) {
	var rows []exp.E9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E9([]string{"stacked"}, 2048, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Phases), "phases")
	b.ReportMetric(rows[0].MaxShrink, "max-shrink")
}

func BenchmarkE10DetVsRand(b *testing.B) {
	var rows []exp.E10Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E10("stacked", 200, []float64{0.05, 0.5}, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].RandOK)/float64(rows[0].Trials)*100, "rand-ok-%-lowrate")
	b.ReportMetric(float64(rows[1].RandOK)/float64(rows[1].Trials)*100, "rand-ok-%-highrate")
	b.ReportMetric(float64(rows[0].DetOK)/float64(rows[0].Trials)*100, "det-ok-%")
}

func BenchmarkE11AwerbuchMessageLevel(b *testing.B) {
	var rows []exp.E11Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E11([]string{"grid", "stacked"}, 2048, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Rounds), "rounds")
	b.ReportMetric(float64(rows[0].Bound), "bound")
}

func BenchmarkE12SeparatorSize(b *testing.B) {
	var rows []exp.E12Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E12([]string{"grid", "stacked", "polygon"}, 4096, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].CycleSepLen), "grid-cycle-len")
	b.ReportMetric(float64(rows[0].LevelSepLen), "grid-level-len")
}

// BenchmarkCoreSeparator measures the raw centralized separator computation
// (micro-benchmark, not an experiment).
func BenchmarkCoreSeparator(b *testing.B) {
	in, err := NewStackedTriangulation(4096, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := NewConfig(in, TreeBFS, OuterRoot(in))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindCycleSeparator(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreDFSBuild measures the raw DFS-tree construction.
func BenchmarkCoreDFSBuild(b *testing.B) {
	in, err := NewStackedTriangulation(2048, 3)
	if err != nil {
		b.Fatal(err)
	}
	root := OuterRoot(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildDFSTree(in, root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Ablation runs the design-element ablation study: the full
// algorithm must never use the exhaustive safety net; each ablation shows
// how often the removed element would have been needed.
func BenchmarkE13Ablation(b *testing.B) {
	var rows []exp.E13Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.E13([]string{"grid", "cylinderish", "stacked", "sparse"}, 128, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Ablation == "full" && (r.Exhaustive != 0 || r.Unbalanced != 0) {
			b.Fatalf("full algorithm not clean: %+v", r)
		}
	}
	b.ReportMetric(float64(rows[0].Exhaustive), "full-exhaustive")
	for _, r := range rows[1:] {
		b.ReportMetric(float64(r.Exhaustive+r.Unbalanced+r.Errors),
			r.Ablation+"-failures")
	}
}
