package planardfs

// Integration stress tests: the full pipeline (generation → configuration →
// separator → DFS) at larger sizes across all families, with invariants
// checked end to end. Skipped under -short.

import (
	"testing"

	"planardfs/internal/gen"
)

func TestStressSeparatorAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, fam := range gen.Families {
		for _, n := range []int{200, 800} {
			in, err := gen.ByName(fam, n, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []TreeKind{TreeBFS, TreeDeepDFS} {
				cfg, err := NewConfig(in, kind, OuterRoot(in))
				if err != nil {
					t.Fatalf("%s/%v: %v", in.Name, kind, err)
				}
				sep, err := FindCycleSeparator(cfg)
				if err != nil {
					t.Fatalf("%s/%v: %v", in.Name, kind, err)
				}
				nn := in.G.N()
				if maxC := VerifySeparatorBalance(in.G, sep.Path); 3*maxC > 2*nn {
					t.Fatalf("%s/%v: unbalanced (%d of %d, phase %v)",
						in.Name, kind, maxC, nn, sep.Phase)
				}
			}
		}
	}
}

func TestStressDFSAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, fam := range gen.Families {
		in, err := gen.ByName(fam, 400, 9)
		if err != nil {
			t.Fatal(err)
		}
		root := OuterRoot(in)
		tree, trace, err := BuildDFSTree(in, root)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if err := VerifyDFSTree(in.G, root, tree.Parent); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if trace.Phases > 40 {
			t.Fatalf("%s: %d phases", in.Name, trace.Phases)
		}
	}
}

func TestStressPartitionedSeparators(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	in, err := NewGrid(24, 18)
	if err != nil {
		t.Fatal(err)
	}
	// A 4x3 tiling of connected blocks.
	partOf := make([]int, in.G.N())
	for y := 0; y < 18; y++ {
		for x := 0; x < 24; x++ {
			partOf[y*24+x] = (y/6)*4 + x/6
		}
	}
	part, err := NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	results, err := SeparatorsForPartition(in, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("parts = %d", len(results))
	}
	for _, r := range results {
		sub, orig, err := in.G.InducedSubgraph(part.Parts[r.Part])
		if err != nil {
			t.Fatal(err)
		}
		idx := map[int]int{}
		for i, v := range orig {
			idx[v] = i
		}
		local := make([]int, len(r.Sep.Path))
		for i, v := range r.Sep.Path {
			local[i] = idx[v]
		}
		if maxC := VerifySeparatorBalance(sub, local); 3*maxC > 2*r.SubN {
			t.Fatalf("part %d unbalanced", r.Part)
		}
	}
}

// TestStressDeterminism runs the separator and DFS twice and demands
// identical outputs (the paper's algorithms are deterministic; so must the
// implementation be, including its map usage).
func TestStressDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	in, err := NewStackedTriangulation(600, 21)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)
	cfg, err := NewConfig(in, TreeBFS, root)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FindCycleSeparator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindCycleSeparator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phase != b.Phase || len(a.Path) != len(b.Path) {
		t.Fatal("separator nondeterministic")
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatal("separator path nondeterministic")
		}
	}
	t1, _, err := BuildDFSTree(in, root)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := BuildDFSTree(in, root)
	if err != nil {
		t.Fatal(err)
	}
	for v := range t1.Parent {
		if t1.Parent[v] != t2.Parent[v] {
			t.Fatal("DFS tree nondeterministic")
		}
	}
}
