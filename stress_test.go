package planardfs

// Integration stress tests: the full pipeline (generation → configuration →
// separator → DFS) across all families, with invariants checked end to end.
// The light sizes always run; the heaviest sizes are gated behind
// testing.Short() so `go test -short ./...` stays fast.

import (
	"bytes"
	"testing"

	"planardfs/internal/gen"
)

func TestStressSeparatorAllFamilies(t *testing.T) {
	sizes := []int{200}
	if !testing.Short() {
		sizes = append(sizes, 800)
	}
	for _, fam := range gen.Families {
		for _, n := range sizes {
			in, err := gen.ByName(fam, n, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []TreeKind{TreeBFS, TreeDeepDFS} {
				cfg, err := NewConfig(in, kind, OuterRoot(in))
				if err != nil {
					t.Fatalf("%s/%v: %v", in.Name, kind, err)
				}
				sep, err := FindCycleSeparator(cfg)
				if err != nil {
					t.Fatalf("%s/%v: %v", in.Name, kind, err)
				}
				nn := in.G.N()
				if maxC := VerifySeparatorBalance(in.G, sep.Path); 3*maxC > 2*nn {
					t.Fatalf("%s/%v: unbalanced (%d of %d, phase %v)",
						in.Name, kind, maxC, nn, sep.Phase)
				}
			}
		}
	}
}

func TestStressDFSAllFamilies(t *testing.T) {
	n := 150
	if !testing.Short() {
		n = 400
	}
	for _, fam := range gen.Families {
		in, err := gen.ByName(fam, n, 9)
		if err != nil {
			t.Fatal(err)
		}
		root := OuterRoot(in)
		tree, trace, err := BuildDFSTree(in, root)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if err := VerifyDFSTree(in.G, root, tree.Parent); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if trace.Phases > 40 {
			t.Fatalf("%s: %d phases", in.Name, trace.Phases)
		}
	}
}

func TestStressPartitionedSeparators(t *testing.T) {
	in, err := NewGrid(24, 18)
	if err != nil {
		t.Fatal(err)
	}
	// A 4x3 tiling of connected blocks.
	partOf := make([]int, in.G.N())
	for y := 0; y < 18; y++ {
		for x := 0; x < 24; x++ {
			partOf[y*24+x] = (y/6)*4 + x/6
		}
	}
	part, err := NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	results, err := SeparatorsForPartition(in, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("parts = %d", len(results))
	}
	for _, r := range results {
		sub, orig, err := in.G.InducedSubgraph(part.Parts[r.Part])
		if err != nil {
			t.Fatal(err)
		}
		idx := map[int]int{}
		for i, v := range orig {
			idx[v] = i
		}
		local := make([]int, len(r.Sep.Path))
		for i, v := range r.Sep.Path {
			local[i] = idx[v]
		}
		if maxC := VerifySeparatorBalance(sub, local); 3*maxC > 2*r.SubN {
			t.Fatalf("part %d unbalanced", r.Part)
		}
	}
}

// TestStressDeterminism runs the separator and DFS twice and demands
// identical outputs (the paper's algorithms are deterministic; so must the
// implementation be, including its map usage).
func TestStressDeterminism(t *testing.T) {
	n := 200
	if !testing.Short() {
		n = 600
	}
	in, err := NewStackedTriangulation(n, 21)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)
	cfg, err := NewConfig(in, TreeBFS, root)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FindCycleSeparator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindCycleSeparator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phase != b.Phase || len(a.Path) != len(b.Path) {
		t.Fatal("separator nondeterministic")
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatal("separator path nondeterministic")
		}
	}
	t1, _, err := BuildDFSTree(in, root)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := BuildDFSTree(in, root)
	if err != nil {
		t.Fatal(err)
	}
	for v := range t1.Parent {
		if t1.Parent[v] != t2.Parent[v] {
			t.Fatal("DFS tree nondeterministic")
		}
	}
}

// TestStressTracedDeterminism locks the tracing subsystem's reproducibility
// contract at the facade level: two same-input traced DFS runs must export
// byte-identical JSONL and Chrome trace files, and tracing must not change
// the constructed tree.
func TestStressTracedDeterminism(t *testing.T) {
	n := 150
	if !testing.Short() {
		n = 400
	}
	in, err := NewStackedTriangulation(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)
	plain, _, err := BuildDFSTree(in, root)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*TraceRecorder, *DFSTree) {
		rec := NewTraceRecorder()
		tree, _, err := BuildDFSTreeTraced(in, root, rec)
		if err != nil {
			t.Fatal(err)
		}
		return rec, tree
	}
	rec1, tree1 := run()
	rec2, _ := run()
	for v := range plain.Parent {
		if plain.Parent[v] != tree1.Parent[v] {
			t.Fatal("tracing changed the DFS tree")
		}
	}
	var j1, j2, c1, c2 bytes.Buffer
	if err := rec1.WriteJSONL(&j1); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteJSONL(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSONL exports differ between same-input runs")
	}
	if err := rec1.WriteChromeTrace(&c1); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteChromeTrace(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("Chrome exports differ between same-input runs")
	}
	if len(rec1.Spans()) == 0 {
		t.Fatal("trace is empty")
	}
}
