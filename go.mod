module planardfs

go 1.22
