module planardfs

go 1.22.0

require golang.org/x/tools v0.28.1

// Offline vendored subset of x/tools (go/analysis and its dependency
// closure), copied from the Go toolchain's cmd/vendor tree; see
// third_party/golang.org/x/tools/LICENSE.
replace golang.org/x/tools => ./third_party/golang.org/x/tools
