// Package planardfs is a from-scratch Go implementation of
// "Deterministic Distributed DFS via Cycle Separators in Planar Graphs"
// (Jauregui, Montealegre, Rapaport — PODC 2025).
//
// The package exposes the paper's two headline results over embedded planar
// graphs:
//
//   - Theorem 1: deterministic computation of cycle separators — T-path
//     separators closed by a real or ℰ-compatible virtual edge, leaving
//     components of at most 2n/3 vertices — in Õ(D) CONGEST rounds,
//     partition-parallel (FindCycleSeparator, SeparatorsForPartition).
//   - Theorem 2: deterministic construction of a DFS tree in Õ(D) CONGEST
//     rounds (BuildDFSTree).
//
// Everything the algorithms depend on is implemented in this module:
// combinatorial planar embeddings with face tracing and Jordan
// classification, planar graph generators, rooted spanning-tree machinery
// with embedding-ordered DFS orders, the deterministic face-weight formulas
// of Definition 2, a CONGEST-model simulator with message-level programs
// (BFS, pipelined part-wise aggregation, Awerbuch's DFS baseline), the
// low-congestion-shortcut cost layer, and a randomized-estimation baseline.
//
// Round accounting: algorithms are executed as local computation plus
// invocations of the paper's communication primitives; CostModel converts a
// run's primitive tally into simulated rounds, under either the paper's
// charged Õ(D) shortcut bound (PaperCost) or the measured pipelined
// O(D + k) bound (PipelinedCost).
package planardfs

import (
	"context"
	"errors"
	"fmt"

	"planardfs/internal/cert"
	"planardfs/internal/chaos"
	"planardfs/internal/congest"
	"planardfs/internal/dfs"
	"planardfs/internal/dist"
	"planardfs/internal/gen"
	"planardfs/internal/graph"
	"planardfs/internal/guard"
	"planardfs/internal/planar"
	"planardfs/internal/separator"
	"planardfs/internal/sepengine"
	"planardfs/internal/serve"
	"planardfs/internal/shortcut"
	"planardfs/internal/spanning"
	"planardfs/internal/trace"
	"planardfs/internal/weights"
)

// Core re-exported types. Aliases keep the full method sets usable while the
// implementations live in internal packages.
type (
	// Graph is a simple undirected graph with stable edge identifiers.
	Graph = graph.Graph
	// Edge is an undirected vertex pair.
	Edge = graph.Edge
	// Embedding is a combinatorial planar embedding (clockwise rotation
	// system).
	Embedding = planar.Embedding
	// Instance is an embedded planar graph with a designated outer face.
	Instance = gen.Instance
	// Tree is a rooted spanning tree.
	Tree = spanning.Tree
	// Config is a planar configuration (G, ℰ, T) with precomputed DFS
	// orders, ready for weight and separator computations.
	Config = weights.Config
	// Separator is a cycle separator (a T-path with closing endpoints).
	Separator = separator.Separator
	// SeparatorPhase identifies which case of the algorithm produced a
	// separator.
	SeparatorPhase = separator.Phase
	// Partition is a vertex partition with connected parts.
	Partition = shortcut.Partition
	// PartSeparator is a per-part separator result.
	PartSeparator = separator.PartResult
	// DFSTree is a partial (or complete) DFS tree grown by the DFS-RULE.
	DFSTree = dfs.PartialTree
	// DFSTrace records the phase structure of a DFS construction run.
	DFSTrace = dfs.Trace
	// CostModel converts communication primitives into CONGEST rounds.
	CostModel = shortcut.CostModel
	// PaperCost charges the deterministic Õ(D) shortcut bound the paper
	// cites.
	PaperCost = shortcut.PaperCost
	// PipelinedCost charges the measured pipelined-aggregation bound
	// O(D + k).
	PipelinedCost = shortcut.PipelinedCost
	// Ops tallies invocations of the communication primitives.
	Ops = dist.Ops
	// Network is a CONGEST-model simulator over a graph.
	Network = congest.Network
	// NetworkStats aggregates instrumentation of a CONGEST run.
	NetworkStats = congest.Stats
	// Tracer receives round-stamped spans and metrics from instrumented
	// runs (see internal/trace).
	Tracer = trace.Tracer
	// TraceRecorder is the in-memory Tracer with JSONL and Chrome
	// trace_event exporters.
	TraceRecorder = trace.Recorder
	// TraceSpan is one recorded span.
	TraceSpan = trace.SpanEvent
	// TraceHistogram is a fixed-bucket histogram from a recorder.
	TraceHistogram = trace.Histogram
)

// NewTraceRecorder returns an empty trace recorder. Pass it wherever a
// Tracer is accepted (Config.Tracer, Network.Tracer, BuildDFSTreeTraced),
// then export with WriteJSONL, WriteChromeTrace or WriteMetrics.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NopTracer is the disabled tracer: every instrumented call site treats it
// (or a nil Tracer) as "tracing off" and skips all recording work.
var NopTracer = trace.Nop

// Graph generators (all return validated embeddings with an outer face).
var (
	// NewGrid returns the w x h grid graph.
	NewGrid = gen.Grid
	// NewCycle returns the n-cycle.
	NewCycle = gen.Cycle
	// NewWheel returns the wheel with an n-cycle rim.
	NewWheel = gen.Wheel
	// NewFan returns the fan graph on n vertices.
	NewFan = gen.Fan
	// NewStackedTriangulation returns a random maximal planar graph.
	NewStackedTriangulation = gen.StackedTriangulation
	// NewSparsePlanar returns a random connected planar graph.
	NewSparsePlanar = gen.SparsePlanar
	// NewPolygonTriangulation returns a random outerplanar triangulation.
	NewPolygonTriangulation = gen.PolygonTriangulation
	// NewRandomTree returns a random tree.
	NewRandomTree = gen.RandomTree
	// NewPathTree returns the path graph.
	NewPathTree = gen.PathTree
	// NewCaterpillar returns a caterpillar tree.
	NewCaterpillar = gen.Caterpillar
)

// TreeKind selects the spanning tree used by a configuration.
type TreeKind int

// Spanning tree kinds.
const (
	// TreeBFS uses a breadth-first tree (depth <= D; the common choice).
	TreeBFS TreeKind = iota + 1
	// TreeDeepDFS uses a depth-first tree (depth up to Θ(n); the stress
	// case the paper's subroutines are designed for).
	TreeDeepDFS
)

// OuterRoot returns a vertex on the instance's outer face, the natural root
// for spanning trees (the paper requires the root on the outer face).
func OuterRoot(in *Instance) int {
	fs := in.Emb.TraceFaces()
	return fs.FaceVertices(in.OuterFace())[0]
}

// NewConfig builds a planar configuration over the instance with a spanning
// tree of the given kind rooted at root (which must lie on the outer face).
func NewConfig(in *Instance, kind TreeKind, root int) (*Config, error) {
	var tr *Tree
	var err error
	switch kind {
	case TreeBFS:
		tr, err = spanning.BFSTree(in.G, root)
	case TreeDeepDFS:
		tr, err = spanning.DeepDFSTree(in.G, root)
	default:
		return nil, fmt.Errorf("planardfs: unknown tree kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	return weights.NewConfig(in.G, in.Emb, in.OuterDart, tr)
}

// FindCycleSeparator computes a cycle separator of the configuration's
// graph (Theorem 1).
func FindCycleSeparator(cfg *Config) (*Separator, error) {
	return separator.Find(cfg)
}

// Multi-backend separator engines (internal/sepengine): a registry of
// cycle-separator backends behind one interface — the paper's Theorem 1
// constructive engine, classical Lipton–Tarjan, the BFS-level engine in
// the style of Har-Peled–Nayyeri, a dual-tree weight-decomposition engine,
// and the sampling-estimation baseline. Every engine output is
// cross-validated by the centralized separator oracle and side oracle of
// internal/cert before it is returned.
type (
	// SeparatorEngineResult is a validated engine output: the separator,
	// side masks, balance, cycle length and charged round cost.
	SeparatorEngineResult = sepengine.Result
	// SeparatorEngineOptions carry per-call engine knobs (tracer, seed,
	// sampling rate, ablations).
	SeparatorEngineOptions = sepengine.Options
)

// ErrNoSeparator marks a legitimate engine failure: the engine ran to
// completion without finding a balanced cycle separator. The default
// engine (theorem1) never returns it on valid planar configurations.
var ErrNoSeparator = sepengine.ErrNoSeparator

// DefaultSeparatorEngine is the registry name of the Theorem 1 engine.
const DefaultSeparatorEngine = sepengine.DefaultEngine

// SeparatorEngines lists the registered engine names, sorted.
func SeparatorEngines() []string { return sepengine.Names() }

// FindCycleSeparatorWithEngine computes a validated cycle separator with
// the named engine (empty name selects the default). Unknown names return
// a typed error listing the available engines.
func FindCycleSeparatorWithEngine(cfg *Config, engine string, opts SeparatorEngineOptions) (*SeparatorEngineResult, error) {
	return sepengine.Find(engine, cfg, opts)
}

// SeparatorsForPartition computes a cycle separator of every part's induced
// subgraph (the partition-parallel form of Theorem 1). Parts must induce
// connected subgraphs.
func SeparatorsForPartition(in *Instance, part *Partition) ([]*PartSeparator, error) {
	if err := part.Validate(in.G); err != nil {
		return nil, err
	}
	return separator.ForPartition(in.Emb, in.OuterDart, part)
}

// NewPartition builds a Partition from a part-of array (part IDs 0..k-1).
func NewPartition(partOf []int) (*Partition, error) {
	return shortcut.NewPartition(partOf)
}

// SeparatorForSubset computes a cycle separator of the subgraph induced by
// vs (which must be connected), in original vertex IDs.
func SeparatorForSubset(in *Instance, vs []int) (*Separator, error) {
	return separator.ForSubset(in.Emb, in.OuterFace(), vs)
}

// Decomposition is a recursive separator decomposition tree.
type Decomposition = separator.Decomposition

// DecompositionNode is one piece of a decomposition tree.
type DecompositionNode = separator.DecompositionNode

// DecomposeGraph recursively splits the instance with cycle separators
// until pieces have at most leafSize vertices — the divide-and-conquer
// skeleton of the classical separator applications. The tree depth is
// O(log n) by the 2/3 balance.
func DecomposeGraph(in *Instance, leafSize int) (*Decomposition, error) {
	return separator.Decompose(in.Emb, in.OuterDart, leafSize)
}

// VerifySeparatorBalance returns the largest component after removing the
// separator vertices; a valid separator has max component <= 2n/3.
func VerifySeparatorBalance(g *Graph, sep []int) int {
	return separator.VerifyBalance(g, sep)
}

// BuildDFSTree constructs a DFS tree of the instance rooted at root
// (Theorem 2), returning the tree and the recursion trace.
func BuildDFSTree(in *Instance, root int) (*DFSTree, *DFSTrace, error) {
	return dfs.Build(in.G, in.Emb, in.OuterDart, root)
}

// BuildDFSTreeTraced is BuildDFSTree with the whole run — DFS phases, join
// sub-phases, per-component separator computations and their lemma
// subroutines, and the charged communication primitives — recorded on
// tracer as round-stamped spans. A nil tracer disables tracing.
func BuildDFSTreeTraced(in *Instance, root int, tracer Tracer) (*DFSTree, *DFSTrace, error) {
	return dfs.BuildTraced(in.G, in.Emb, in.OuterDart, root, tracer)
}

// BuildDFSTreeWithEngine is BuildDFSTreeTraced with the per-component
// separator computation run by the named engine (empty name selects the
// default). A soft engine failure (ErrNoSeparator) on a component falls
// back to the Theorem 1 engine for that component — the build stays total —
// and the returned trace counts the fallbacks in EngineFallbacks.
func BuildDFSTreeWithEngine(in *Instance, root int, engine string, tracer Tracer) (*DFSTree, *DFSTrace, error) {
	eng, err := sepengine.Get(engine)
	if err != nil {
		return nil, nil, err
	}
	fallbacks := 0
	find := func(cfg *Config) (*Separator, error) {
		res, ferr := eng.FindCycleSeparator(cfg, SeparatorEngineOptions{Tracer: tracer})
		if ferr == nil {
			return res.Sep, nil
		}
		if !errors.Is(ferr, ErrNoSeparator) {
			return nil, ferr
		}
		fallbacks++
		return separator.Find(cfg)
	}
	pt, tr, err := dfs.BuildWithSeparator(in.G, in.Emb, in.OuterDart, root, tracer, find)
	if tr != nil {
		tr.EngineFallbacks = fallbacks
	}
	return pt, tr, err
}

// VerifyDFSTree checks the DFS property: parent must describe a spanning
// tree of g rooted at root in which every graph edge connects an
// ancestor-descendant pair.
func VerifyDFSTree(g *Graph, root int, parent []int) error {
	return dfs.IsDFSTree(g, root, parent)
}

// Distributed certification (internal/cert): proof-labeling schemes whose
// verifiers run on the CONGEST simulator — an O(log n)-bit label per vertex,
// an O(1)-round label exchange, and one part-wise aggregation of the
// verdicts.
type (
	// CertVerdict is the outcome of a certification run: global acceptance,
	// rejecting vertices, and round/label-size accounting.
	CertVerdict = cert.Verdict
	// CertOptions configure a certification run (engine selection, tracer).
	CertOptions = cert.Options
)

// CertifySpanningTree proves and distributively verifies that t is a rooted
// spanning tree of g.
func CertifySpanningTree(g *Graph, t *Tree, opt CertOptions) (*CertVerdict, error) {
	return cert.CertifySpanningTree(g, t, opt)
}

// CertifyDFSTree proves and distributively verifies the DFS property of the
// parent array: preorder-interval labels, with every non-tree edge checked
// to be a back edge.
func CertifyDFSTree(g *Graph, root int, parent []int, opt CertOptions) (*CertVerdict, error) {
	return cert.CertifyDFSTree(g, root, parent, opt)
}

// CertifySeparator proves and distributively verifies the separator
// property of sep: a simple G-path whose removal leaves components of at
// most 2n/3 vertices.
func CertifySeparator(g *Graph, sep *Separator, opt CertOptions) (*CertVerdict, error) {
	return cert.CertifySeparator(g, sep, opt)
}

// CertifyEmbedding proves and distributively verifies the Euler sanity of
// the embedding (genus 0 via aggregated face-leader counts).
func CertifyEmbedding(emb *Embedding, opt CertOptions) (*CertVerdict, error) {
	return cert.CertifyEmbedding(emb, opt)
}

// SeparatorRounds returns the simulated CONGEST round cost of one
// partition-parallel cycle-separator computation (Theorem 1) on an n-vertex
// graph under the cost model, with k concurrent parts.
func SeparatorRounds(n int, cm CostModel, k int) int {
	return dist.SeparatorOps(n).Rounds(cm, k)
}

// DFSRounds returns the simulated CONGEST round cost of a DFS construction
// run with the given trace under the cost model.
func DFSRounds(n int, tr *DFSTrace, cm CostModel) int {
	return dist.DFSBuildOps(n, tr.Phases, tr.MaxJoinSubPhases).Rounds(cm, 1)
}

// AwerbuchRounds returns the round cost of the classical DFS baseline [2].
func AwerbuchRounds(n int) int { return dist.AwerbuchRounds(n) }

// RunAwerbuchDFS executes Awerbuch's token DFS as a real message-level
// CONGEST program and returns the resulting DFS parent array and the
// network statistics.
func RunAwerbuchDFS(g *Graph, root int) ([]int, NetworkStats, error) {
	nw := congest.New(g)
	nodes := congest.NewAwerbuchNodes(nw, root)
	if _, err := nw.Run(nodes, 10*g.N()+100); err != nil {
		return nil, NetworkStats{}, err
	}
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = nodes[v].(*congest.AwerbuchNode).ParentID
	}
	return parent, nw.Stats(), nil
}

// RunPartwiseSum executes the pipelined part-wise aggregation as a real
// message-level CONGEST program, summing value per part; it returns the
// per-vertex results and network statistics.
func RunPartwiseSum(g *Graph, root int, part *Partition, value []int) ([]int, NetworkStats, error) {
	res, err := shortcut.RunPA(g, root, part, value, congest.OpSum)
	if err != nil {
		return nil, NetworkStats{}, err
	}
	return res.Values, res.Stats, nil
}

// Deterministic fault injection and certified recovery (internal/chaos):
// seeded fault plans perturb CONGEST runs reproducibly, and the supervised
// runtime retries, degrades or fails explicitly — never returning an
// uncertified result.
type (
	// FaultPlan is a deterministic fault scenario: explicit faults plus a
	// seeded randomized Spec, re-derived per recovery attempt.
	FaultPlan = chaos.Plan
	// FaultSpec sizes the randomized portion of a fault plan.
	FaultSpec = chaos.Spec
	// FaultCounts tallies faults that actually fired during a run.
	FaultCounts = chaos.Counts
	// RecoveryPolicy bounds the supervised runtime (attempts, round
	// budgets, backoff, tracing).
	RecoveryPolicy = chaos.Policy
	// RecoveryReport is the full account of a supervised run: terminal
	// outcome, per-attempt records, fired faults, and verdicts.
	RecoveryReport = chaos.Report
	// RecoveryOutcome classifies how a supervised run ended.
	RecoveryOutcome = chaos.Outcome
)

// The supervised outcomes re-exported from internal/chaos.
const (
	RecoveryCertified      = chaos.OutcomeCertified
	RecoveryCertifiedRetry = chaos.OutcomeCertifiedRetry
	RecoveryDegraded       = chaos.OutcomeDegraded
	RecoveryFailed         = chaos.OutcomeFailed
	// RecoveryRejectedInput: the guard stage of a guarded run rejected the
	// input before any producer attempt ran.
	RecoveryRejectedInput = chaos.OutcomeRejectedInput
)

// NewFaultPlan returns a plan deriving spec-sized random faults from seed.
func NewFaultPlan(seed int64, spec FaultSpec) *FaultPlan {
	return chaos.NewPlan(seed, spec)
}

// ParseFaultSpec parses a CLI fault-spec string, e.g.
// "drops=2,corruptions=1,crashes=1,structural=4".
func ParseFaultSpec(s string) (FaultSpec, error) { return chaos.ParseSpec(s) }

// BuildDFSTreeWithRecovery constructs a DFS tree of the instance under the
// supervised recovery runtime of internal/chaos. The primary stage is the
// Theorem 2 separator pipeline, whose simulated output is perturbed by the
// plan's structural faults (decaying across attempts) and certified by the
// DFS proof-labeling scheme; if every primary attempt is rejected, the
// runtime degrades to Awerbuch's message-level token DFS under the plan's
// message-level faults. The returned parent array is valid only when the
// report's Outcome is not RecoveryFailed. A nil plan supervises a
// fault-free run.
func BuildDFSTreeWithRecovery(in *Instance, root int, plan *FaultPlan, pol RecoveryPolicy) ([]int, *RecoveryReport, error) {
	return BuildDFSTreeWithRecoveryContext(context.Background(), in, root, plan, pol)
}

// BuildDFSTreeWithRecoveryContext is BuildDFSTreeWithRecovery under a
// cancellation context: cancelling ctx stops the supervised retry loop
// mid-flight (the terminal outcome is an error wrapping ctx.Err(), never a
// partial result). This is the form the serve layer's job cancellation and
// graceful shutdown run through.
func BuildDFSTreeWithRecoveryContext(ctx context.Context, in *Instance, root int, plan *FaultPlan, pol RecoveryPolicy) ([]int, *RecoveryReport, error) {
	primary, fallback := dfsRecoveryStages(in, root, plan, pol)
	return chaos.RunWithRecoveryContext(ctx, primary, &fallback, pol)
}

// dfsRecoveryStages builds the supervised stage pair of the DFS recovery
// runtime: the charged Theorem 2 pipeline as primary, Awerbuch's
// message-level token DFS as fallback.
func dfsRecoveryStages(in *Instance, root int, plan *FaultPlan, pol RecoveryPolicy) (chaos.Stage[[]int], chaos.Stage[[]int]) {
	g := in.G
	opt := CertOptions{Tracer: pol.Tracer}
	var structural chaos.Counts
	primary := chaos.Stage[[]int]{
		Name:          "separator-pipeline",
		DefaultBudget: 10*g.N() + 100,
		// The pipeline is a simulated (charged) stage: it reports the
		// paper-model round cost but is not bound by the attempt budget —
		// its retries are driven by certification rejections of the
		// structurally faulted output, which decay across attempts.
		Run: func(attempt, budget int) ([]int, int, error) {
			pt, dtr, err := dfs.Build(g, in.Emb, in.OuterDart, root)
			if err != nil {
				return nil, 0, err
			}
			parent := append([]int(nil), pt.Parent...)
			structural.Structural += int64(plan.CorruptParents(attempt, root, parent))
			bt, err := spanning.BFSTree(g, root)
			if err != nil {
				return nil, 0, err
			}
			rounds := DFSRounds(g.N(), dtr, PaperCost{D: bt.MaxDepth(), N: g.N()})
			return parent, rounds, nil
		},
		Certify: chaos.DFSCertifier(g, root, opt),
		Faults:  func() chaos.Counts { return structural },
	}
	fallback := chaos.AwerbuchDFS(g, root, plan, opt)
	return primary, fallback
}

// Input validation (internal/guard): the admission subsystem that runs
// before the Theorem 2 pipeline and rejects non-planar and
// corrupted-embedding inputs with typed, certifiable verdicts — a
// distributed rotation/endpoint consistency check, a one-sided-error
// CONGEST planarity property tester, and the Euler-count certification,
// all as real node programs on the simulator.
type (
	// GuardVerdict is the outcome of a validation run: per-stage results
	// with measured CONGEST cost, and a witness on rejection.
	GuardVerdict = guard.Verdict
	// GuardWitness is the concrete evidence attached to a rejection.
	GuardWitness = guard.Witness
	// GuardOptions configure a validation run (engine, tester seed and
	// ball budget, tracing).
	GuardOptions = guard.Options
	// GuardReason classifies a rejection (shape, disconnected, rotation,
	// endpoint-mismatch, edge-count, dense-region, euler).
	GuardReason = guard.Reason
	// GuardRejectionError is the typed error form of a rejecting verdict.
	GuardRejectionError = guard.RejectionError
)

// ErrInputRejected is the sentinel every guard rejection matches:
// errors.Is(err, ErrInputRejected) distinguishes "the input is bad" from
// infrastructure failures.
var ErrInputRejected = guard.ErrRejected

// ValidateEmbedding validates an instance's graph and claimed embedding
// end to end — shape and connectivity prechecks, the distributed rotation
// consistency check, the planarity property tester, and the Euler-count
// certification. A bad input is a rejecting verdict (verdict.Err()
// returns the typed GuardRejectionError), not an error.
func ValidateEmbedding(in *Instance, opt GuardOptions) (*GuardVerdict, error) {
	return guard.ValidateInstance(in, opt)
}

// ValidatePlanarity validates a bare graph (no embedding claims) with the
// prechecks and the one-sided-error planarity tester: a connected planar
// graph is always accepted; a non-planar graph is rejected when an
// edge-count or dense-region witness is found.
func ValidatePlanarity(g *Graph, opt GuardOptions) (*GuardVerdict, error) {
	return guard.ValidateGraph(g, opt)
}

// BuildDFSTreeGuarded is BuildDFSTreeWithRecoveryContext with the guard
// run at admission: the instance is validated before any pipeline attempt,
// and a rejection ends the run with RecoveryRejectedInput (the report
// carries the typed rejection; no producer ever sees the bad input).
func BuildDFSTreeGuarded(ctx context.Context, in *Instance, root int, gopt GuardOptions, plan *FaultPlan, pol RecoveryPolicy) ([]int, *RecoveryReport, error) {
	primary, fallback := dfsRecoveryStages(in, root, plan, pol)
	admit := func(context.Context) (error, error) {
		v, err := guard.ValidateInstance(in, gopt)
		if err != nil {
			return nil, err
		}
		return v.Err(), nil
	}
	return chaos.RunWithRecoveryGuarded(ctx, admit, primary, &fallback, pol)
}

// Simulation-as-a-service (internal/serve): an embeddable HTTP job server
// that runs the separator/DFS/cert/chaos pipelines on a bounded worker
// pool and answers repeat queries from a content-addressed decomposition
// cache. Run standalone with cmd/planard, or mount a JobServer under any
// http mux.
type (
	// JobServer is the embeddable simulation service (an http.Handler).
	JobServer = serve.Server
	// JobServerOptions size a JobServer (workers, queue depth, cache
	// budget, admission limits).
	JobServerOptions = serve.Options
	// JobStatus is the lifecycle view of one submitted job.
	JobStatus = serve.JobStatus
	// JobRequest is the POST /v1/jobs submission body.
	JobRequest = serve.JobRequest
)

// NewJobServer starts a simulation job server; stop it with Shutdown.
func NewJobServer(opts JobServerOptions) *JobServer { return serve.New(opts) }

// CanonicalGraphBytes returns the canonical byte encoding of an instance —
// the deterministic serialization whose SHA-256 (GraphContentHash) keys
// the serve layer's decomposition cache.
func CanonicalGraphBytes(in *Instance) []byte { return gen.CanonicalBytes(in) }

// GraphContentHash returns the content address of an instance (lowercase
// hex SHA-256 of CanonicalGraphBytes).
func GraphContentHash(in *Instance) string { return gen.ContentHash(in) }

// RandomizedSeparator runs the sampling-estimation baseline (Ghaffari-
// Parter style) through the engine registry: it may fail with an error
// wrapping ErrNoSeparator (no estimate in the safety band, or a sampled
// face that is unbalanced); see experiment E10. The sample count is
// returned even on failure. The RNG is derived from seed, never from the
// process-global generator. A zero sampleRate or margin selects the engine
// defaults (0.25 and 0.03).
func RandomizedSeparator(cfg *Config, sampleRate, margin float64, seed int64) (*Separator, int, error) {
	res, err := sepengine.Find("randomized", cfg, SeparatorEngineOptions{
		Seed: seed, SampleRate: sampleRate, Margin: margin,
	})
	if err != nil {
		var nse *sepengine.NoSeparatorError
		if errors.As(err, &nse) {
			return nil, nse.Samples, err
		}
		return nil, 0, err
	}
	return res.Sep, res.Samples, nil
}

// BFSLevelSeparator returns the classical Lipton-Tarjan first-step
// baseline: the median BFS level.
func BFSLevelSeparator(g *Graph, root int) []int {
	return separator.BFSLevelSeparator(g, root)
}
