package planardfs_test

import (
	"fmt"

	"planardfs"
)

// ExampleFindCycleSeparator demonstrates Theorem 1: a deterministic cycle
// separator with the 2n/3 balance guarantee.
func ExampleFindCycleSeparator() {
	in, _ := planardfs.NewStackedTriangulation(200, 7)
	cfg, _ := planardfs.NewConfig(in, planardfs.TreeBFS, planardfs.OuterRoot(in))
	sep, _ := planardfs.FindCycleSeparator(cfg)
	maxComp := planardfs.VerifySeparatorBalance(in.G, sep.Path)
	fmt.Println("balanced:", 3*maxComp <= 2*in.G.N())
	// Output: balanced: true
}

// ExampleBuildDFSTree demonstrates Theorem 2: a verified DFS tree built by
// recursive separator joining.
func ExampleBuildDFSTree() {
	in, _ := planardfs.NewGrid(10, 10)
	root := planardfs.OuterRoot(in)
	tree, _, _ := planardfs.BuildDFSTree(in, root)
	fmt.Println("valid DFS tree:", planardfs.VerifyDFSTree(in.G, root, tree.Parent) == nil)
	// Output: valid DFS tree: true
}
