// Message-level CONGEST demo: run the pipelined part-wise aggregation and
// Awerbuch's DFS as real node programs with enforced O(log n)-bit messages,
// and compare the measured rounds with the charged cost models.
package main

import (
	"fmt"
	"log"

	"planardfs"
)

func main() {
	in, err := planardfs.NewGrid(20, 20)
	if err != nil {
		log.Fatal(err)
	}
	g := in.G
	n := g.N()
	d := g.Diameter()
	fmt.Printf("graph: %s  n=%d  D=%d\n", in.Name, n, d)

	// Part-wise aggregation with a growing number of parts: the measured
	// rounds follow O(depth + k).
	fmt.Println("\npipelined part-wise aggregation (message level):")
	fmt.Printf("%6s %10s %14s %14s\n", "k", "rounds", "pipelined-est", "paper-est")
	for _, k := range []int{1, 4, 16, 64} {
		partOf := make([]int, n)
		value := make([]int, n)
		for v := range partOf {
			partOf[v] = v % k
			value[v] = 1
		}
		part, err := planardfs.NewPartition(partOf)
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := planardfs.RunPartwiseSum(g, 0, part, value)
		if err != nil {
			log.Fatal(err)
		}
		pipe := planardfs.PipelinedCost{Depth: d}
		paper := planardfs.PaperCost{D: d, N: n}
		fmt.Printf("%6d %10d %14d %14d\n", k, stats.Rounds,
			(planardfs.Ops{PA: 1}).Rounds(pipe, k),
			(planardfs.Ops{PA: 1}).Rounds(paper, k))
	}

	// Awerbuch's DFS at the message level: Θ(n) rounds, verified output.
	fmt.Println("\nAwerbuch token DFS (message level):")
	parent, stats, err := planardfs.RunAwerbuchDFS(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := planardfs.VerifyDFSTree(g, 0, parent); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds %d (bound %d), messages %d, max edge load %d\n",
		stats.Rounds, planardfs.AwerbuchRounds(n), stats.Messages, stats.MaxEdgeLoad)
}
