// Quickstart: build an embedded planar graph, compute a deterministic cycle
// separator (Theorem 1), and verify the guarantees.
package main

import (
	"fmt"
	"log"

	"planardfs"
)

func main() {
	// A random maximal planar graph with 500 vertices.
	in, err := planardfs.NewStackedTriangulation(500, 42)
	if err != nil {
		log.Fatal(err)
	}
	n := in.G.N()
	fmt.Printf("graph: %s  n=%d m=%d diameter=%d\n", in.Name, n, in.G.M(), in.G.Diameter())

	// A planar configuration: embedding + BFS spanning tree rooted on the
	// outer face.
	cfg, err := planardfs.NewConfig(in, planardfs.TreeBFS, planardfs.OuterRoot(in))
	if err != nil {
		log.Fatal(err)
	}

	// Theorem 1: the deterministic cycle separator.
	sep, err := planardfs.FindCycleSeparator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("separator: %d vertices (T-path %d..%d), found by phase %q\n",
		len(sep.Path), sep.EndA, sep.EndB, sep.Phase)

	// Verify the 2n/3 balance guarantee.
	maxComp := planardfs.VerifySeparatorBalance(in.G, sep.Path)
	fmt.Printf("largest remaining component: %d of %d (bound %d)\n", maxComp, n, 2*n/3)
	if 3*maxComp > 2*n {
		log.Fatal("unbalanced separator — this must never happen")
	}

	// Round cost under the paper's charged shortcut bound.
	d := in.G.Diameter()
	cm := planardfs.PaperCost{D: d, N: n}
	fmt.Printf("simulated CONGEST rounds (paper model, D=%d): %d\n",
		d, planardfs.SeparatorRounds(n, cm, 1))
}
