// Recursive separator decomposition — the classical Lipton-Tarjan
// divide-and-conquer application: repeatedly split the graph with cycle
// separators until pieces are small, reporting the recursion depth
// (O(log n) by the 2/3 balance) and the total separator mass.
package main

import (
	"fmt"
	"log"
	"sort"

	"planardfs"
)

func main() {
	in, err := planardfs.NewStackedTriangulation(2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	n := in.G.N()
	fmt.Printf("graph: %s  n=%d m=%d\n", in.Name, n, in.G.M())

	const leafSize = 20

	d, err := planardfs.DecomposeGraph(in, leafSize)
	if err != nil {
		log.Fatal(err)
	}
	levelSep := map[int]int{}
	d.Walk(func(node *planardfs.DecompositionNode) {
		levelSep[node.Depth] += len(node.Separator)
	})

	fmt.Printf("leaf pieces (≤%d vertices): %d\n", leafSize, d.Leaves)
	fmt.Printf("recursion depth: %d (log_{3/2} of n ≈ %.0f)\n", d.MaxDepth, log32(n))
	fmt.Printf("total separator mass: %d vertices (%.1f%% of n)\n",
		d.SeparatorMass, 100*float64(d.SeparatorMass)/float64(n))
	var levels []int
	for l := range levelSep {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		fmt.Printf("  level %2d: separator vertices %d\n", l, levelSep[l])
	}
}

func log32(n int) float64 {
	x, c := float64(n), 0.0
	for x > 1 {
		x /= 1.5
		c++
	}
	return c
}
