// DFS tree construction (Theorem 2) on a grid, with verification and a
// round-cost comparison against Awerbuch's classical O(n) algorithm.
package main

import (
	"fmt"
	"log"

	"planardfs"
)

func main() {
	in, err := planardfs.NewGrid(24, 24)
	if err != nil {
		log.Fatal(err)
	}
	n := in.G.N()
	d := in.G.Diameter()
	root := planardfs.OuterRoot(in)
	fmt.Printf("graph: %s  n=%d  D=%d  root=%d\n", in.Name, n, d, root)

	tree, trace, err := planardfs.BuildDFSTree(in, root)
	if err != nil {
		log.Fatal(err)
	}
	if err := planardfs.VerifyDFSTree(in.G, root, tree.Parent); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFS tree verified: every edge connects an ancestor-descendant pair\n")
	fmt.Printf("recursion phases: %d (log_{3/2} n ≈ %.1f)\n", trace.Phases, logBase(1.5, n))
	fmt.Printf("max component per phase: %v\n", trace.MaxComponent)
	fmt.Printf("separator phases used: %v\n", trace.SeparatorPhases)
	fmt.Printf("join sub-phases: total %d, max per join %d\n",
		trace.JoinSubPhases, trace.MaxJoinSubPhases)

	cm := planardfs.PaperCost{D: d, N: n}
	det := planardfs.DFSRounds(n, trace, cm)
	awe := planardfs.AwerbuchRounds(n)
	fmt.Printf("simulated rounds: deterministic Õ(D) = %d, Awerbuch Θ(n) = %d\n", det, awe)

	// Run Awerbuch for real at the message level.
	parent, stats, err := planardfs.RunAwerbuchDFS(in.G, root)
	if err != nil {
		log.Fatal(err)
	}
	if err := planardfs.VerifyDFSTree(in.G, root, parent); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Awerbuch (message-level): %d rounds, %d messages\n",
		stats.Rounds, stats.Messages)
}

func logBase(b float64, n int) float64 {
	x, c := float64(n), 0.0
	for x > 1 {
		x /= b
		c++
	}
	return c
}
