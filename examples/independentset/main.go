// Independent set via separator decomposition — the application that
// motivated separators in Lipton–Tarjan's original work (cited in the
// paper's introduction): recursively split the graph with cycle separators,
// solve the small leaf pieces exactly, and take the union. Pieces are
// pairwise non-adjacent (the separators are removed), so the union is an
// independent set of size at least OPT minus the separator mass.
package main

import (
	"fmt"
	"log"

	"planardfs"
)

const leafSize = 18

func main() {
	in, err := planardfs.NewStackedTriangulation(1200, 11)
	if err != nil {
		log.Fatal(err)
	}
	g := in.G
	n := g.N()
	fmt.Printf("graph: %s  n=%d m=%d\n", in.Name, n, g.M())

	// Recursive separator decomposition through the library API.
	d, err := planardfs.DecomposeGraph(in, leafSize)
	if err != nil {
		log.Fatal(err)
	}
	var pieces [][]int
	d.Walk(func(node *planardfs.DecompositionNode) {
		if len(node.Children) == 0 && node.Separator == nil {
			pieces = append(pieces, node.Vertices)
		}
	})
	sepMass := d.SeparatorMass

	// Exact maximum independent set on every leaf piece.
	isSize := 0
	var chosen []int
	for _, piece := range pieces {
		sub := exactMIS(g, piece)
		isSize += len(sub)
		chosen = append(chosen, sub...)
	}
	if !independent(g, chosen) {
		log.Fatal("result is not independent — decomposition bug")
	}

	greedy := greedyMIS(g)
	fmt.Printf("pieces: %d (≤%d vertices each), separator mass %d (%.1f%%)\n",
		len(pieces), leafSize, sepMass, 100*float64(sepMass)/float64(n))
	fmt.Printf("independent set via separators: %d vertices\n", isSize)
	fmt.Printf("greedy baseline:                %d vertices\n", greedy)
	fmt.Printf("guarantee: ≥ OPT − %d (every planar graph has OPT ≥ n/4 = %d)\n",
		sepMass, n/4)
}

// exactMIS computes a maximum independent set of the induced subgraph by
// branching on a maximum-degree vertex (fine for pieces of <= ~20 vertices).
func exactMIS(g *planardfs.Graph, piece []int) []int {
	in := map[int]bool{}
	for _, v := range piece {
		in[v] = true
	}
	var solve func(avail map[int]bool) []int
	solve = func(avail map[int]bool) []int {
		// Pick a max-degree available vertex.
		best, bestDeg := -1, -1
		for v := range avail {
			d := 0
			for _, w := range g.Neighbors(v) {
				if avail[w] {
					d++
				}
			}
			if d > bestDeg || (d == bestDeg && v < best) {
				best, bestDeg = v, d
			}
		}
		if best < 0 {
			return nil
		}
		if bestDeg == 0 {
			// All remaining vertices are independent.
			out := make([]int, 0, len(avail))
			for v := range avail {
				out = append(out, v)
			}
			return out
		}
		// Branch: exclude best, or include best (excluding its neighbours).
		without := cloneSet(avail)
		delete(without, best)
		a := solve(without)

		with := cloneSet(avail)
		delete(with, best)
		for _, w := range g.Neighbors(best) {
			delete(with, w)
		}
		b := append(solve(with), best)
		if len(a) > len(b) {
			return a
		}
		return b
	}
	return solve(in)
}

func cloneSet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func independent(g *planardfs.Graph, vs []int) bool {
	in := map[int]bool{}
	for _, v := range vs {
		if in[v] {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

func greedyMIS(g *planardfs.Graph) int {
	taken := map[int]bool{}
	blocked := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		taken[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return len(taken)
}
