package planardfs

import (
	"testing"
)

func TestPublicSeparatorFlow(t *testing.T) {
	in, err := NewStackedTriangulation(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)
	for _, kind := range []TreeKind{TreeBFS, TreeDeepDFS} {
		cfg, err := NewConfig(in, kind, root)
		if err != nil {
			t.Fatal(err)
		}
		sep, err := FindCycleSeparator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := in.G.N()
		if maxC := VerifySeparatorBalance(in.G, sep.Path); 3*maxC > 2*n {
			t.Fatalf("kind %d: unbalanced: %d of %d", kind, maxC, n)
		}
	}
	if _, err := NewConfig(in, TreeKind(99), root); err == nil {
		t.Fatal("unknown tree kind accepted")
	}
}

func TestPublicDFSFlow(t *testing.T) {
	in, err := NewGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)
	tree, trace, err := BuildDFSTree(in, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDFSTree(in.G, root, tree.Parent); err != nil {
		t.Fatal(err)
	}
	if trace.Phases == 0 {
		t.Fatal("empty trace")
	}
	// Round accounting: deterministic Õ(D) beats Awerbuch's Θ(n) once n is
	// large relative to D... at this size just check positivity and
	// consistency.
	d := in.G.Diameter()
	cm := PaperCost{D: d, N: in.G.N()}
	if DFSRounds(in.G.N(), trace, cm) <= 0 || SeparatorRounds(in.G.N(), cm, 1) <= 0 {
		t.Fatal("round estimates must be positive")
	}
	if AwerbuchRounds(in.G.N()) != 2*(in.G.N()-1)+1 {
		t.Fatal("Awerbuch bound wrong")
	}
}

func TestPublicPartitionFlow(t *testing.T) {
	in, err := NewGrid(9, 6)
	if err != nil {
		t.Fatal(err)
	}
	partOf := make([]int, in.G.N())
	for y := 0; y < 6; y++ {
		for x := 0; x < 9; x++ {
			partOf[y*9+x] = x / 3
		}
	}
	part, err := NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	results, err := SeparatorsForPartition(in, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parts = %d", len(results))
	}
	// Invalid partition rejected.
	bad := make([]int, in.G.N())
	for v := range bad {
		bad[v] = v % 2
	}
	if badPart, err := NewPartition(bad); err == nil {
		if _, err := SeparatorsForPartition(in, badPart); err == nil {
			t.Fatal("disconnected parts accepted")
		}
	}
}

func TestPublicCongestPrograms(t *testing.T) {
	in, err := NewGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	parent, stats, err := RunAwerbuchDFS(in.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDFSTree(in.G, 0, parent); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > AwerbuchRounds(in.G.N())+1 {
		t.Fatalf("Awerbuch rounds %d exceed bound %d", stats.Rounds, AwerbuchRounds(in.G.N()))
	}

	partOf := make([]int, in.G.N())
	value := make([]int, in.G.N())
	for v := range partOf {
		partOf[v] = v % 4
		value[v] = 1
	}
	part, err := NewPartition(partOf)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunPartwiseSum(in.G, 0, part, value)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res {
		if r != 9 {
			t.Fatalf("vertex %d: part sum %d, want 9", v, r)
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	in, err := NewStackedTriangulation(90, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfig(in, TreeBFS, OuterRoot(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, samples, err := RandomizedSeparator(cfg, 1.0, 0, 4); err == nil && samples == 0 {
		t.Fatal("full sample reported zero samples")
	}
	lvl := BFSLevelSeparator(in.G, 0)
	if len(lvl) == 0 {
		t.Fatal("empty level separator")
	}
	if 2*VerifySeparatorBalance(in.G, lvl) > in.G.N() {
		t.Fatal("level separator unbalanced")
	}
}

func TestPublicDecompose(t *testing.T) {
	in, err := NewStackedTriangulation(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecomposeGraph(in, 15)
	if err != nil {
		t.Fatal(err)
	}
	if d.Leaves == 0 || d.MaxDepth == 0 {
		t.Fatalf("trivial decomposition: %+v", d)
	}
	seen := 0
	d.Walk(func(n *DecompositionNode) {
		seen += len(n.Separator)
		if len(n.Children) == 0 {
			seen += len(n.Vertices)
		}
	})
	if seen != in.G.N() {
		t.Fatalf("decomposition covers %d of %d vertices", seen, in.G.N())
	}
}

func TestPublicRecoveryFlow(t *testing.T) {
	in, err := NewGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	root := OuterRoot(in)

	// Fault-free supervision: one attempt, certified.
	parent, rep, err := BuildDFSTreeWithRecovery(in, root, nil, RecoveryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RecoveryCertified {
		t.Fatalf("fault-free outcome = %v, want certified", rep.Outcome)
	}
	if err := VerifyDFSTree(in.G, root, parent); err != nil {
		t.Fatal(err)
	}

	// Structural faults decay across attempts: the supervisor must either
	// certify a correct tree after retries or degrade to the (message-level)
	// Awerbuch fallback — never return an uncertified tree.
	spec, err := ParseFaultSpec("structural=3")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(11, spec)
	rec := NewTraceRecorder()
	parent, rep, err = BuildDFSTreeWithRecovery(in, root, plan, RecoveryPolicy{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	switch rep.Outcome {
	case RecoveryCertifiedRetry, RecoveryDegraded:
	default:
		t.Fatalf("outcome = %v, want retry or degraded under structural faults", rep.Outcome)
	}
	if err := VerifyDFSTree(in.G, root, parent); err != nil {
		t.Fatalf("supervised run returned a non-DFS tree: %v", err)
	}
	if rep.Faults.Structural == 0 {
		t.Fatal("no structural fault fired")
	}
	if rec.Counter("chaos.attempts") < 2 {
		t.Fatal("retry not visible in metrics")
	}
	if len(rep.Verdicts) == 0 {
		t.Fatal("no distributed verdicts recorded")
	}
}
